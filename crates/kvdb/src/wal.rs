//! The classic durability personality: an ARIES-lite redo write-ahead
//! log over the Ext4+JBD2+Flashcache stack.
//!
//! Every KV commit appends full images of its dirty pages plus a commit
//! record to `kv.wal` and fsyncs; home pages in `kv.db` are only written
//! at checkpoints (WAL past a size threshold) and on recovery. Recovery
//! replays completed transactions in order and discards the torn tail.
//!
//! This is deliberately the paper's "journaling of journal" shape
//! (§2.2): the application WAL rides on a journaling file system, so
//! every logical page is written to the app WAL, to the JBD2 journal,
//! to the FS home location, and eventually to the database file — the
//! write amplification the Tinca personality exists to eliminate.

use std::collections::BTreeMap;

use blockdev::BlockDevice;
use fssim::stack::{build, Stack, StackConfig, System};
use fssim::{FileId, FsError};
use nvmsim::NvmConfig;

use crate::page::{crc32, PAGE_SIZE};
use crate::store::{KvError, PageStore, StoreStats};

const DB_FILE: &str = "kv.db";
const WAL_FILE: &str = "kv.wal";
const PAGE_MAGIC: &[u8; 4] = b"KVWR";
const COMMIT_MAGIC: &[u8; 4] = b"KVCM";
/// [magic 4][page id 4][image PAGE_SIZE][crc 4]
const PAGE_REC: usize = 12 + PAGE_SIZE;
/// [magic 4][seq 8][npages 4][crc 4]
const COMMIT_REC: usize = 20;

/// Tuning for [`WalStore`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Checkpoint (write back home pages, truncate the WAL) once the WAL
    /// grows past this many bytes.
    pub checkpoint_bytes: u64,
    /// Pages the store will address (the `kv.db` size budget).
    pub page_capacity: u32,
    /// Trace NVM persistence events (crash harnesses need this).
    pub traced: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            checkpoint_bytes: 1 << 20,
            page_capacity: 8192,
            traced: false,
        }
    }
}

/// Redo-WAL page store over a classic journaling stack.
pub struct WalStore {
    stack: Stack,
    wal_cfg: WalConfig,
    db_ino: FileId,
    wal_ino: FileId,
    /// Pages whose newest image lives only in the WAL (not yet
    /// checkpointed to `kv.db`). `BTreeMap` so checkpoint write-back
    /// order is deterministic for crash replay.
    dirty_home: BTreeMap<u32, Box<[u8; PAGE_SIZE]>>,
    wal_len: u64,
    seq: u64,
    commits: u64,
    pages_committed: u64,
}

fn fs_err(e: FsError) -> KvError {
    KvError::Store(e.to_string())
}

impl WalStore {
    /// Builds a fresh classic stack (`System::Classic` unless overridden
    /// in `stack_cfg`) and formats an empty store on it.
    pub fn format(mut stack_cfg: StackConfig, wal_cfg: WalConfig) -> Result<WalStore, KvError> {
        if wal_cfg.traced {
            let nvm_cfg = stack_cfg
                .nvm_override
                .take()
                .unwrap_or_else(|| NvmConfig::new(stack_cfg.nvm_bytes, stack_cfg.nvm_tech));
            stack_cfg.nvm_override = Some(nvm_cfg.with_tracing());
        }
        let stack = build(&stack_cfg).map_err(fs_err)?;
        Self::mount(stack, wal_cfg)
    }

    /// A tiny classic stack for tests.
    pub fn tiny(wal_cfg: WalConfig) -> Result<WalStore, KvError> {
        Self::format(StackConfig::tiny(System::Classic), wal_cfg)
    }

    /// Mounts a store on an already-built (or remounted-after-crash)
    /// stack: opens or creates the two files and runs WAL recovery.
    pub fn mount(mut stack: Stack, wal_cfg: WalConfig) -> Result<WalStore, KvError> {
        let db_ino = open_or_create(&mut stack, DB_FILE)?;
        let wal_ino = open_or_create(&mut stack, WAL_FILE)?;
        let mut store = WalStore {
            stack,
            wal_cfg,
            db_ino,
            wal_ino,
            dirty_home: BTreeMap::new(),
            wal_len: 0,
            seq: 0,
            commits: 0,
            pages_committed: 0,
        };
        store.recover()?;
        Ok(store)
    }

    /// Replays completed WAL transactions into the home-page buffer,
    /// discards the torn tail, then checkpoints so the store restarts
    /// with an empty WAL.
    fn recover(&mut self) -> Result<(), KvError> {
        let wal_size = self.stack.fs.file_size(self.wal_ino);
        if wal_size == 0 {
            return Ok(());
        }
        let mut wal = vec![0u8; wal_size as usize];
        self.stack
            .fs
            .read(self.wal_ino, 0, &mut wal)
            .map_err(fs_err)?;
        let mut pos = 0usize;
        let mut pending: Vec<(u32, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        while pos < wal.len() {
            let rest = &wal[pos..];
            if rest.len() >= PAGE_REC && &rest[0..4] == PAGE_MAGIC {
                let body = &rest[4..PAGE_REC - 4];
                let stored = u32::from_le_bytes([
                    rest[PAGE_REC - 4],
                    rest[PAGE_REC - 3],
                    rest[PAGE_REC - 2],
                    rest[PAGE_REC - 1],
                ]);
                if crc32(body) != stored {
                    break; // torn page record: end of valid log
                }
                let id = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
                let mut img = Box::new([0u8; PAGE_SIZE]);
                img.copy_from_slice(&body[4..]);
                pending.push((id, img));
                pos += PAGE_REC;
            } else if rest.len() >= COMMIT_REC && &rest[0..4] == COMMIT_MAGIC {
                let body = &rest[4..COMMIT_REC - 4];
                let stored = u32::from_le_bytes([
                    rest[COMMIT_REC - 4],
                    rest[COMMIT_REC - 3],
                    rest[COMMIT_REC - 2],
                    rest[COMMIT_REC - 1],
                ]);
                if crc32(body) != stored {
                    break;
                }
                let seq = u64::from_le_bytes([
                    body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
                ]);
                let npages = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
                if npages as usize != pending.len() {
                    break; // commit record for a different batch: torn
                }
                for (id, img) in pending.drain(..) {
                    self.dirty_home.insert(id, img);
                }
                self.seq = seq;
                pos += COMMIT_REC;
            } else {
                break; // unrecognized or truncated record: torn tail
            }
        }
        self.checkpoint()
    }

    /// Writes every buffered home page to `kv.db`, makes that durable,
    /// then truncates the WAL. Idempotent: a crash between the two
    /// fsyncs leaves the WAL intact and replay re-derives the same
    /// home images.
    fn checkpoint(&mut self) -> Result<(), KvError> {
        for (id, img) in &self.dirty_home {
            self.stack
                .fs
                .write(self.db_ino, u64::from(*id) * PAGE_SIZE as u64, &img[..])
                .map_err(fs_err)?;
        }
        self.stack.fs.fsync().map_err(fs_err)?;
        self.stack.fs.truncate(self.wal_ino, 0).map_err(fs_err)?;
        self.stack.fs.fsync().map_err(fs_err)?;
        self.dirty_home.clear();
        self.wal_len = 0;
        Ok(())
    }

    /// The underlying stack (device handles for crash harnesses and
    /// measurement).
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// Mutable stack access (the crash apps arm trips through this).
    pub fn stack_mut(&mut self) -> &mut Stack {
        &mut self.stack
    }

    /// Tears the store down to its stack (for crash-and-remount cycles;
    /// all DRAM buffering is discarded, as a real crash would).
    pub fn into_stack(self) -> Stack {
        self.stack
    }
}

fn open_or_create(stack: &mut Stack, name: &str) -> Result<FileId, KvError> {
    match stack.fs.open(name) {
        Ok(ino) => Ok(ino),
        Err(_) => {
            let ino = stack.fs.create(name).map_err(fs_err)?;
            stack.fs.fsync().map_err(fs_err)?;
            Ok(ino)
        }
    }
}

impl PageStore for WalStore {
    fn read_page(&mut self, id: u32, buf: &mut [u8; PAGE_SIZE]) -> Result<(), KvError> {
        if let Some(img) = self.dirty_home.get(&id) {
            buf.copy_from_slice(&img[..]);
            return Ok(());
        }
        buf.fill(0);
        let off = u64::from(id) * PAGE_SIZE as u64;
        if off < self.stack.fs.file_size(self.db_ino) {
            self.stack.fs.read(self.db_ino, off, buf).map_err(fs_err)?;
        }
        Ok(())
    }

    fn commit_pages(&mut self, dirty: &[(u32, [u8; PAGE_SIZE])]) -> Result<(), KvError> {
        // One contiguous append: page records then the commit record.
        let mut rec = Vec::with_capacity(dirty.len() * PAGE_REC + COMMIT_REC);
        for (id, img) in dirty {
            rec.extend_from_slice(PAGE_MAGIC);
            let body_start = rec.len();
            rec.extend_from_slice(&id.to_le_bytes());
            rec.extend_from_slice(img);
            let crc = crc32(&rec[body_start..]);
            rec.extend_from_slice(&crc.to_le_bytes());
        }
        self.seq += 1;
        rec.extend_from_slice(COMMIT_MAGIC);
        let body_start = rec.len();
        rec.extend_from_slice(&self.seq.to_le_bytes());
        rec.extend_from_slice(&(dirty.len() as u32).to_le_bytes());
        let crc = crc32(&rec[body_start..]);
        rec.extend_from_slice(&crc.to_le_bytes());

        self.stack
            .fs
            .write(self.wal_ino, self.wal_len, &rec)
            .map_err(fs_err)?;
        self.stack.fs.fsync().map_err(fs_err)?;
        self.wal_len += rec.len() as u64;

        // The WAL is durable: the commit is decided. Buffer the home
        // images; they reach kv.db at the next checkpoint.
        for (id, img) in dirty {
            self.dirty_home.insert(*id, Box::new(*img));
        }
        self.commits += 1;
        self.pages_committed += dirty.len() as u64;

        if self.wal_len >= self.wal_cfg.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn page_capacity(&self) -> u32 {
        self.wal_cfg.page_capacity
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.commits,
            pages_committed: self.pages_committed,
            nvm_bytes: self.stack.nvm.stats().bytes_written_back(),
            disk_bytes: self.stack.disk.stats().writes * blockdev::BLOCK_SIZE as u64,
        }
    }
}
