//! The durability seam: one [`PageStore`] trait, two personalities.
//!
//! [`crate::Db`] reads pages and commits batches of dirty page images;
//! *how* a batch becomes durable and atomic is the store's business:
//!
//! * [`crate::WalStore`] — ARIES-lite redo WAL over the classic
//!   Ext4+JBD2+Flashcache stack (page images appended and fsynced, home
//!   pages written back at checkpoints, replay on recovery);
//! * [`crate::TincaStore`] — no WAL at all: the batch is one Tinca
//!   transaction and the ring commit is the durability point.

use std::fmt;

use crate::page::{PageError, PAGE_SIZE};

/// KV-store errors. Storage faults are values, never panics — the crash
/// apps distinguish an injected [`nvmsim::CrashTripped`] panic from a
/// genuine bug by the fact that the genuine path returns `Err`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// The backing store failed (device, filesystem, or cache error).
    Store(String),
    /// A page failed structural validation — torn or stale on-device data.
    Corrupt { page: u32, err: PageError },
    /// The store's page budget is exhausted.
    Full,
    /// Key longer than [`crate::page::MAX_KEY`].
    KeyTooLarge(usize),
    /// Value longer than [`crate::page::MAX_VAL`].
    ValTooLarge(usize),
    /// A mutation outside `begin`..`commit`, or a nested `begin`.
    TxnState(&'static str),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Store(m) => write!(f, "store error: {m}"),
            KvError::Corrupt { page, err } => write!(f, "page {page} corrupt: {err}"),
            KvError::Full => write!(f, "out of pages"),
            KvError::KeyTooLarge(n) => write!(f, "key too large: {n} bytes"),
            KvError::ValTooLarge(n) => write!(f, "value too large: {n} bytes"),
            KvError::TxnState(m) => write!(f, "transaction misuse: {m}"),
        }
    }
}

/// Device-write accounting for the WAL-elimination comparison: how many
/// bytes actually reached persistent media on behalf of this store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// KV commits executed.
    pub commits: u64,
    /// Dirty pages carried by those commits.
    pub pages_committed: u64,
    /// Bytes written back to the NVM medium (cache lines × 64).
    pub nvm_bytes: u64,
    /// Bytes written to the disk (blocks × 4096).
    pub disk_bytes: u64,
}

impl StoreStats {
    /// Total bytes that hit persistent devices.
    pub fn device_bytes(&self) -> u64 {
        self.nvm_bytes + self.disk_bytes
    }

    /// Write amplification relative to the logical commit payload.
    pub fn amplification(&self) -> f64 {
        let logical = self.pages_committed * PAGE_SIZE as u64;
        if logical == 0 {
            return 0.0;
        }
        self.device_bytes() as f64 / logical as f64
    }
}

/// What [`crate::Db`] needs from a durability backend.
pub trait PageStore {
    /// Reads page `id` into `buf`. A page that was never committed reads
    /// as all zeros ([`crate::page::is_blank`]).
    fn read_page(&mut self, id: u32, buf: &mut [u8; PAGE_SIZE]) -> Result<(), KvError>;

    /// Atomically and durably applies one commit's dirty page images.
    /// After a crash anywhere inside this call, recovery must surface
    /// either every image or none of them.
    fn commit_pages(&mut self, dirty: &[(u32, [u8; PAGE_SIZE])]) -> Result<(), KvError>;

    /// Pages this store can address.
    fn page_capacity(&self) -> u32;

    /// Device-write accounting so far.
    fn stats(&self) -> StoreStats;
}
