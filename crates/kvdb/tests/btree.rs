//! B-tree correctness: unit tests for splits, merges and the page codec,
//! plus property tests against a `BTreeMap` model on both durability
//! personalities.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use std::collections::BTreeMap;
use std::ops::Bound;

use kvdb::{Db, KvError, PageStore, TincaStore, TincaStoreConfig, WalConfig, WalStore};
use proptest::prelude::*;

fn tinca_db() -> Db<TincaStore> {
    Db::open(TincaStore::format(TincaStoreConfig {
        nvm_bytes_per_shard: 1 << 20,
        ..TincaStoreConfig::default()
    }))
    .unwrap()
}

fn wal_db() -> Db<WalStore> {
    Db::open(WalStore::tiny(WalConfig::default()).unwrap()).unwrap()
}

fn k(i: u32) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

fn v(i: u32, tag: u32) -> Vec<u8> {
    format!("val-{i:06}-{tag:04}-{}", "x".repeat(32)).into_bytes()
}

#[test]
fn put_get_roundtrip_both_personalities() {
    for mode in ["tinca", "wal"] {
        type PutGet<'a> = &'a mut dyn FnMut(&[u8], &[u8]) -> Option<Vec<u8>>;
        let check = |db: PutGet<'_>| {
            assert_eq!(db(b"alpha", b"1"), Some(b"1".to_vec()), "{mode}");
        };
        match mode {
            "tinca" => {
                let mut db = tinca_db();
                check(&mut |key, val| {
                    db.begin().unwrap();
                    db.put(key, val).unwrap();
                    db.commit().unwrap();
                    db.get(key).unwrap()
                });
            }
            _ => {
                let mut db = wal_db();
                check(&mut |key, val| {
                    db.begin().unwrap();
                    db.put(key, val).unwrap();
                    db.commit().unwrap();
                    db.get(key).unwrap()
                });
            }
        }
    }
}

#[test]
fn splits_preserve_order_and_contents() {
    let mut db = tinca_db();
    let n = 500u32;
    db.begin().unwrap();
    for i in 0..n {
        // Insertion order hostile to naive splitting: alternating ends.
        let i = if i % 2 == 0 { i / 2 } else { n - 1 - i / 2 };
        db.put(&k(i), &v(i, 0)).unwrap();
    }
    db.commit().unwrap();
    db.validate().unwrap();
    let all = db.scan_all().unwrap();
    assert_eq!(all.len(), n as usize);
    for (i, (key, val)) in all.iter().enumerate() {
        assert_eq!(key, &k(i as u32));
        assert_eq!(val, &v(i as u32, 0));
    }
}

#[test]
fn overwrites_do_not_grow_the_tree() {
    let mut db = tinca_db();
    db.begin().unwrap();
    for i in 0..200 {
        db.put(&k(i), &v(i, 0)).unwrap();
    }
    db.commit().unwrap();
    let count_before = db.scan_all().unwrap().len();
    db.begin().unwrap();
    for i in 0..200 {
        db.put(&k(i), &v(i, 1)).unwrap();
    }
    db.commit().unwrap();
    db.validate().unwrap();
    assert_eq!(db.scan_all().unwrap().len(), count_before);
    assert_eq!(db.get(&k(77)).unwrap(), Some(v(77, 1)));
}

#[test]
fn delete_shrinks_back_to_empty_root() {
    let mut db = tinca_db();
    let n = 400u32;
    db.begin().unwrap();
    for i in 0..n {
        db.put(&k(i), &v(i, 0)).unwrap();
    }
    db.commit().unwrap();
    db.begin().unwrap();
    for i in 0..n {
        assert!(db.delete(&k(i)).unwrap(), "key {i} missing at delete");
        if i % 67 == 0 {
            db.validate().unwrap();
        }
    }
    db.commit().unwrap();
    db.validate().unwrap();
    assert!(db.scan_all().unwrap().is_empty());
    // The emptied tree's pages were freed and get reused.
    db.begin().unwrap();
    for i in 0..n {
        db.put(&k(i), &v(i, 2)).unwrap();
    }
    db.commit().unwrap();
    db.validate().unwrap();
    assert_eq!(db.scan_all().unwrap().len(), n as usize);
}

#[test]
fn scan_bounds_match_btreemap_semantics() {
    let mut db = tinca_db();
    let mut model = BTreeMap::new();
    db.begin().unwrap();
    for i in (0..300).step_by(3) {
        db.put(&k(i), &v(i, 0)).unwrap();
        model.insert(k(i), v(i, 0));
    }
    db.commit().unwrap();
    let lo = k(30);
    let hi = k(180);
    let got = db.scan(Bound::Included(&lo), Bound::Excluded(&hi)).unwrap();
    let want: Vec<_> = model
        .range::<Vec<u8>, _>((Bound::Included(&lo), Bound::Excluded(&hi)))
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn txn_state_is_enforced() {
    let mut db = tinca_db();
    assert!(matches!(db.put(b"a", b"b"), Err(KvError::TxnState(_))));
    assert!(matches!(db.commit(), Err(KvError::TxnState(_))));
    db.begin().unwrap();
    assert!(matches!(db.begin(), Err(KvError::TxnState(_))));
    db.commit().unwrap();
}

#[test]
fn size_limits_are_enforced() {
    let mut db = tinca_db();
    db.begin().unwrap();
    assert!(matches!(
        db.put(&[7u8; kvdb::MAX_KEY + 1], b"v"),
        Err(KvError::KeyTooLarge(_))
    ));
    assert!(matches!(db.put(b"", b"v"), Err(KvError::KeyTooLarge(0))));
    assert!(matches!(
        db.put(b"k", &vec![0u8; kvdb::MAX_VAL + 1]),
        Err(KvError::ValTooLarge(_))
    ));
    db.commit().unwrap();
}

#[test]
fn wal_store_survives_checkpoints() {
    // A checkpoint threshold small enough that the workload crosses it
    // several times: contents must be identical before and after.
    let mut db = Db::open(
        WalStore::tiny(WalConfig {
            checkpoint_bytes: 64 << 10,
            ..WalConfig::default()
        })
        .unwrap(),
    )
    .unwrap();
    let mut model = BTreeMap::new();
    for round in 0..6u32 {
        db.begin().unwrap();
        for i in 0..40 {
            let key = k(i * 7 % 97);
            let val = v(i, round);
            db.put(&key, &val).unwrap();
            model.insert(key, val);
        }
        db.commit().unwrap();
    }
    db.validate().unwrap();
    let got: BTreeMap<_, _> = db.scan_all().unwrap().into_iter().collect();
    assert_eq!(got, model);
    assert!(db.store().stats().commits >= 6);
}

#[test]
fn stats_count_commits_and_device_bytes() {
    let mut db = tinca_db();
    db.begin().unwrap();
    db.put(b"k", b"v").unwrap();
    db.commit().unwrap();
    let s = db.store().stats();
    assert!(s.commits >= 1);
    assert!(s.pages_committed >= 2, "meta + leaf");
    assert!(s.device_bytes() > 0);
    assert!(s.amplification() > 0.0);
}

// ---------------------------------------------------------------------------
// Property tests vs the BTreeMap model
// ---------------------------------------------------------------------------

/// One scripted op: key index into a small key universe, optional value.
fn run_model_script<S: PageStore>(mut db: Db<S>, ops: &[(u16, u8, bool)]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for chunk in ops.chunks(5) {
        db.begin().unwrap();
        for &(ki, vi, is_put) in chunk {
            let key = k(u32::from(ki) % 113);
            if is_put {
                let val = v(u32::from(ki), u32::from(vi));
                db.put(&key, &val).unwrap();
                model.insert(key, val);
            } else {
                let want = model.remove(&key).is_some();
                assert_eq!(db.delete(&key).unwrap(), want);
            }
        }
        db.commit().unwrap();
    }
    db.validate().unwrap();
    let got: BTreeMap<_, _> = db.scan_all().unwrap().into_iter().collect();
    assert_eq!(got, model);
    for (key, val) in &model {
        assert_eq!(db.get(key).unwrap().as_ref(), Some(val));
    }
}

proptest! {
    #[test]
    fn tinca_db_matches_btreemap_model(
        ops in proptest::collection::vec((0u16..400, 0u8..255, any::<bool>()), 1..120),
    ) {
        run_model_script(tinca_db(), &ops);
    }

    #[test]
    fn wal_db_matches_btreemap_model(
        ops in proptest::collection::vec((0u16..400, 0u8..255, any::<bool>()), 1..60),
    ) {
        run_model_script(wal_db(), &ops);
    }

    #[test]
    fn reopen_preserves_contents(
        ops in proptest::collection::vec((0u16..200, 0u8..255), 1..60),
    ) {
        let mut db = tinca_db();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        db.begin().unwrap();
        for &(ki, vi) in &ops {
            let key = k(u32::from(ki) % 67);
            let val = v(u32::from(ki), u32::from(vi));
            db.put(&key, &val).unwrap();
            model.insert(key, val);
        }
        db.commit().unwrap();
        // Clean reopen on the same devices: recover the pool, reopen the
        // tree from the committed meta page.
        let (devices, disk, clock, cfg) = db.into_store().into_parts();
        let store = TincaStore::recover(devices, disk, clock, cfg).unwrap();
        let mut db = Db::open(store).unwrap();
        db.validate().unwrap();
        let got: BTreeMap<_, _> = db.scan_all().unwrap().into_iter().collect();
        prop_assert_eq!(got, model);
    }
}
