//! Crash-consistency campaigns for both kvdb durability personalities:
//! random trip sweeps under both failure modes, plus bounded exhaustive
//! persist-frontier enumeration. The ignored 200-seed sweeps run in CI's
//! dedicated kvdb crash step (`--ignored`).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use crashsim::FailureMode;
use kvdb::{
    tinca_kv_frontier_campaign, tinca_kv_fuzz_campaign, wal_kv_frontier_campaign,
    wal_kv_fuzz_campaign,
};

/// Transactions per seeded plan.
const TXNS: usize = 15;
/// Trip ranges sized from measured event rates (~1430 events/txn for the
/// WAL stack, ~60–115/txn per shard for the pool), so trips land
/// mid-workload for most seeds while some seeds run to completion.
const WAL_TRIP_MAX: u64 = 20_000;
const TINCA_TRIP_MAX: u64 = 1_500;

#[test]
fn wal_kv_fuzz_power_pull_smoke() {
    let r = wal_kv_fuzz_campaign(0x11A0, 12, TXNS, WAL_TRIP_MAX, FailureMode::PowerPull);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.crashes > 0, "no seed crashed: widen the trip range");
}

#[test]
fn wal_kv_fuzz_process_kill_smoke() {
    let r = wal_kv_fuzz_campaign(0x11B0, 6, TXNS, WAL_TRIP_MAX, FailureMode::ProcessKill);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.crashes > 0, "no seed crashed: widen the trip range");
}

#[test]
fn tinca_kv_fuzz_power_pull_smoke() {
    let r = tinca_kv_fuzz_campaign(0x22A0, 12, TXNS, TINCA_TRIP_MAX, FailureMode::PowerPull);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.crashes > 0, "no seed crashed: widen the trip range");
}

#[test]
fn tinca_kv_fuzz_process_kill_smoke() {
    let r = tinca_kv_fuzz_campaign(0x22B0, 6, TXNS, TINCA_TRIP_MAX, FailureMode::ProcessKill);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.crashes > 0, "no seed crashed: widen the trip range");
}

#[test]
fn wal_kv_frontier_smoke() {
    let r = wal_kv_frontier_campaign(0x33A0, 2, 4);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.epochs_total > 0, "probe found no workload epochs");
    assert!(r.states_run >= 2 * r.epochs_total);
}

#[test]
fn tinca_kv_frontier_smoke() {
    let r = tinca_kv_frontier_campaign(0x44A0, 2, 4);
    assert!(r.clean(), "violations: {:#?}", r.violations);
    assert!(r.epochs_total > 0, "probe found no workload epochs");
    // Both shards must contribute epochs: page 0 (meta) commits on shard
    // 0 every transaction, odd B-tree pages commit on shard 1.
    assert!(r.states_run >= 2 * r.epochs_total);
}

/// The 200-seed sweep CI runs with `--ignored`: 100 seeds per
/// personality, both failure modes interleaved.
#[test]
#[ignore = "long: run via cargo test -p kvdb --release --test crash -- --ignored"]
fn kv_fuzz_200_seeds() {
    let mut violations: Vec<String> = Vec::new();
    let mut crashes = 0u64;
    for (base, mode) in [
        (0xA000, FailureMode::PowerPull),
        (0xB000, FailureMode::ProcessKill),
    ] {
        let w = wal_kv_fuzz_campaign(base, 50, TXNS, WAL_TRIP_MAX, mode);
        crashes += w.crashes;
        violations.extend(w.violations);
        let t = tinca_kv_fuzz_campaign(base ^ 0xF0F0, 50, TXNS, TINCA_TRIP_MAX, mode);
        crashes += t.crashes;
        violations.extend(t.violations);
    }
    assert!(violations.is_empty(), "violations: {violations:#?}");
    assert!(crashes >= 40, "only {crashes} of 200 seeds crashed");
}
