//! Property tests for the log-linear histogram: quantiles of a merged
//! histogram are bounded by the per-input quantiles, and bucketing never
//! loses or misplaces samples.

use proptest::prelude::*;
use telemetry::Histogram;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning the interesting ranges: exact buckets, mid-range,
/// and the top octaves.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..16,
        4 => 0u64..100_000,
        2 => 0u64..u64::MAX,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn merged_quantiles_are_bounded_by_inputs(
        a in proptest::collection::vec(sample(), 1..200),
        b in proptest::collection::vec(sample(), 1..200),
        qm in 0u32..=1000,
    ) {
        let q = f64::from(qm) / 1000.0;
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let m = ha.merge(&hb);
        let qa = ha.quantile(q).unwrap();
        let qb = hb.quantile(q).unwrap();
        let qq = m.quantile(q).unwrap();
        prop_assert!(
            qa.min(qb) <= qq && qq <= qa.max(qb),
            "q={q}: merged quantile {qq} outside [{}, {}]",
            qa.min(qb),
            qa.max(qb)
        );
    }

    #[test]
    fn merge_is_commutative_and_preserves_totals(
        a in proptest::collection::vec(sample(), 0..100),
        b in proptest::collection::vec(sample(), 0..100),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        let m = ha.merge(&hb);
        prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
        let direct = hist_of(&[a.clone(), b.clone()].concat());
        prop_assert_eq!(m, direct);
    }

    #[test]
    fn quantile_is_an_upper_bound_with_bounded_error(
        xs in proptest::collection::vec(sample(), 1..200),
        qm in 0u32..=1000,
    ) {
        let q = f64::from(qm) / 1000.0;
        let h = hist_of(&xs);
        let est = h.quantile(q).unwrap();
        let mut sorted = xs;
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        // The representative is the upper bound of the true value's
        // bucket: never below the exact quantile, and within one
        // sub-bucket (≤ +25% relative, +1 absolute for tiny values).
        prop_assert!(est >= exact, "est {est} < exact {exact}");
        let limit = exact.saturating_add(exact / 4).saturating_add(1);
        prop_assert!(est <= limit, "est {est} > limit {limit} (exact {exact})");
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        xs in proptest::collection::vec(sample(), 1..200),
        q1 in 0u32..=1000,
        q2 in 0u32..=1000,
    ) {
        let h = hist_of(&xs);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let vlo = h.quantile(f64::from(lo) / 1000.0).unwrap();
        let vhi = h.quantile(f64::from(hi) / 1000.0).unwrap();
        prop_assert!(vlo <= vhi, "q{lo}={vlo} > q{hi}={vhi}");
    }

    #[test]
    fn min_max_sum_track_inputs(xs in proptest::collection::vec(sample(), 1..200)) {
        let h = hist_of(&xs);
        prop_assert_eq!(h.min().unwrap(), *xs.iter().min().unwrap());
        prop_assert_eq!(h.max().unwrap(), *xs.iter().max().unwrap());
        let sum = xs.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), sum);
        let buckets: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(buckets, xs.len() as u64);
    }
}
