//! Telemetry is driven by the simulated clock only, so a seeded workload
//! must produce byte-identical exports every time it runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::{Config, SimClock, TelemetryReport};

/// A synthetic seeded "workload": nested spans, charges, counters, and
/// histogram samples with RNG-chosen durations.
fn run_workload(seed: u64) -> TelemetryReport {
    let clock = SimClock::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let ((), report) = telemetry::record(&clock, Config::with_events(), || {
        for _ in 0..200 {
            let _commit = telemetry::span(telemetry::phase::COMMIT);
            {
                let _stage = telemetry::span(telemetry::phase::COMMIT_STAGE);
                clock.advance(rng.gen_range(100..2000));
                telemetry::charge(telemetry::phase::NVM_FLUSH, {
                    let ns = rng.gen_range(50..500);
                    clock.advance(ns);
                    ns
                });
            }
            if rng.gen_bool(0.3) {
                let _wb = telemetry::span(telemetry::phase::CACHE_WRITEBACK);
                clock.advance(rng.gen_range(1000..50_000));
            }
            telemetry::count("commits", 1);
            telemetry::gauge("dirty", rng.gen_range(0..64));
            telemetry::observe("batch", rng.gen_range(1..16) as u64);
            clock.advance(rng.gen_range(0..100));
        }
    });
    report
}

#[test]
fn same_seed_produces_identical_exports_twice() {
    let a = run_workload(42);
    let b = run_workload(42);
    assert_eq!(a.total_ns, b.total_ns);
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    assert_eq!(a.to_json().render(), b.to_json().render());
    assert_eq!(a.phase_report(), b.phase_report());
}

#[test]
fn different_seeds_produce_different_recordings() {
    let a = run_workload(1);
    let b = run_workload(2);
    assert_ne!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn merged_campaign_report_is_deterministic() {
    let m1 = run_workload(7).merge(&run_workload(8));
    let m2 = run_workload(7).merge(&run_workload(8));
    assert_eq!(m1.to_jsonl(), m2.to_jsonl());
    assert_eq!(m1.counters["commits"], 400);
}
