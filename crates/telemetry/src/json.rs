//! Minimal deterministic JSON value model (the workspace builds offline,
//! so serde is not available; exporters hand-roll their JSON through this).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order, so rendering is
/// deterministic — a hard requirement for the telemetry determinism tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{v:?}` keeps a decimal point or exponent, so the
                    // value re-parses as a float; plain `{}` prints `1`.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
    }

    #[test]
    fn renders_nested_structures_in_order() {
        let j = Json::obj(vec![
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, "x".into()])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,"x"]}"#);
    }
}
