//! Fixed-bucket log-linear latency histograms.
//!
//! Values are bucketed into 4 linear sub-buckets per power of two
//! (HdrHistogram-style): constant memory, O(1) record, ~12 % worst-case
//! relative quantile error — plenty for attributing simulated nanoseconds.
//!
//! Quantiles are reported as the **upper bound of the bucket** holding the
//! rank-`ceil(q·n)` value. Because the representative is a function of the
//! bucket index alone, quantiles of [`Histogram::merge`]d histograms are
//! always bounded by the per-input quantiles (see the property tests).

/// Buckets: 0..=7 exact, then 4 sub-buckets per octave up to `u64::MAX`.
const EXACT: u64 = 8;
const BUCKETS: usize = 8 + (64 - 3) * 4;

/// A fixed-size log-linear histogram of `u64` samples (simulated ns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v`.
fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (exp - 2)) & 3) as usize;
    8 + (exp - 3) * 4 + sub
}

/// Inclusive upper bound of bucket `idx` (the quantile representative).
fn bucket_upper(idx: usize) -> u64 {
    if idx < EXACT as usize {
        return idx as u64;
    }
    let k = idx - 8;
    let exp = 3 + k / 4;
    let sub = (k % 4) as u64;
    let width = 1u64 << (exp - 2);
    let lower = (1u64 << exp).wrapping_add(sub * width);
    lower.wrapping_add(width - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of all samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`): upper bound of the bucket
    /// holding the sample of rank `ceil(q·n)`. `None` when the histogram
    /// is empty **or** `q` is NaN / outside `[0, 1]` — an invalid rank
    /// must never be answered with a bucket representative (open-loop
    /// shed can legitimately leave per-shard histograms empty, and a NaN
    /// `q` would otherwise silently cast to rank 1).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx));
            }
        }
        Some(bucket_upper(BUCKETS - 1))
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile (the open-loop tail-latency series).
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Element-wise sum of two histograms (merging per-thread or per-shard
    /// recordings into one distribution).
    pub fn merge(&self, o: &Histogram) -> Histogram {
        let mut counts = Box::new([0u64; BUCKETS]);
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i] + o.counts[i];
        }
        Histogram {
            counts,
            total: self.total + o.total,
            sum: self.sum.saturating_add(o.sum),
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs (for exporters).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        for v in 1..4096u64 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket({v}) went backwards");
            assert!(v <= bucket_upper(b), "v={v} above its bucket upper");
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.p50(), Some(2));
        assert_eq!(h.quantile(1.0), Some(7));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        h.record(1000);
        let q = h.p50().unwrap();
        assert!(q >= 1000, "representative is an upper bound");
        assert!((q as f64) < 1000.0 * 1.15, "q={q} too far above sample");
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn invalid_q_returns_none_instead_of_a_representative() {
        // Regression: NaN used to cast to rank 0 → clamp to 1 → the
        // minimum bucket's representative; out-of-range q clamped
        // similarly. All must be explicit `None`.
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::INFINITY), None);
        assert_eq!(h.quantile(f64::NEG_INFINITY), None);
        // The valid boundary values still answer.
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn p999_tracks_the_extreme_tail() {
        // 2 outliers in 1001 samples: rank ceil(0.999·1001) = 1000 lands
        // on the outlier bucket, while p99's rank 991 stays in the bulk.
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        h.record(1_000_000);
        let p99 = h.p99().unwrap();
        let p999 = h.p999().unwrap();
        assert!(p99 < 1_000_000, "p99={p99} should miss the 2/1001 outliers");
        assert!(p999 >= 1_000_000, "p999={p999} must catch the outliers");
    }

    #[test]
    fn merge_adds_counts_and_tracks_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(5000);
        let m = a.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.min(), Some(10));
        assert_eq!(m.max(), Some(5000));
        assert_eq!(m.sum(), 5030);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!((50..=56).contains(&p50), "p50={p50}");
        assert!((99..=111).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
    }
}
