//! Simulated time source shared by all devices of one storage stack.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone simulated-nanosecond clock.
///
/// Every simulated device (NVM, disk, network) charges its modelled latency
/// against one shared `SimClock`, so `ops / clock.now()` yields a simulated
/// throughput that is independent of host speed and deterministic across
/// runs. Cloning is cheap (`Arc` internally) and all methods take `&self`,
/// so a clock can be shared freely across the layers of a stack.
///
/// The telemetry recorder reads (never advances) this clock: spans and
/// charges attribute the nanoseconds the devices charge, so recording is
/// invisible to the simulation itself.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at t = 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances simulated time by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advances simulated time to `target_ns` if that is ahead of now;
    /// a no-op when the clock already passed it (time never runs
    /// backwards). Returns the nanoseconds actually advanced. Open-loop
    /// drivers use this to let idle time pass up to an op's arrival
    /// instant, so background-lane deadlines expire during load gaps.
    pub fn advance_to(&self, target_ns: u64) -> u64 {
        let mut now = self.ns.load(Ordering::Relaxed);
        loop {
            if target_ns <= now {
                return 0;
            }
            match self.ns.compare_exchange_weak(
                now,
                target_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return target_ns - now,
                Err(seen) => now = seen,
            }
        }
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Resets the clock to zero (for reuse between experiment phases).
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(100);
        c.advance(23);
        assert_eq!(c.now_ns(), 123);
        assert!((c.now_secs() - 123e-9).abs() < 1e-18);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let d = c.clone();
        c.advance(7);
        assert_eq!(d.now_ns(), 7);
        d.advance(3);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        assert_eq!(c.advance_to(500), 500);
        assert_eq!(c.now_ns(), 500);
        assert_eq!(c.advance_to(300), 0, "never runs backwards");
        assert_eq!(c.now_ns(), 500);
        assert_eq!(c.advance_to(500), 0, "equal target is a no-op");
        assert_eq!(c.advance_to(750), 250);
        assert_eq!(c.now_ns(), 750);
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance(55);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn concurrent_advance_is_lossless() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4000);
    }
}
