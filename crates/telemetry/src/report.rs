//! The finished recording: a phase tree plus metric registries, with
//! exporters for JSONL, chrome://tracing, and a human phase breakdown.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::json::Json;
use crate::recorder::Event;

/// One node of the phase tree. Node 0 is the synthetic root spanning the
/// whole recording window; its `name`/`path` are empty.
#[derive(Clone, Debug)]
pub struct PhaseNode {
    /// Leaf name, e.g. `"commit.stage"`.
    pub name: String,
    /// `/`-joined path from the root, e.g. `"commit/commit.stage"`.
    pub path: String,
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Child indices, in first-observation order.
    pub children: Vec<usize>,
    /// Total simulated ns attributed to this node (includes children).
    pub total_ns: u64,
    /// Number of span occurrences / charges.
    pub count: u64,
}

/// Everything one recording produced.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Phase tree, parent-before-child; `phases[0]` is the root.
    pub phases: Vec<PhaseNode>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Latency histograms (span durations auto-feed one per phase name).
    pub hists: BTreeMap<String, Histogram>,
    /// Individual span events (empty unless `Config::record_events`).
    pub events: Vec<Event>,
    /// Events discarded once the buffer cap was hit.
    pub dropped_events: u64,
    /// Simulated ns covered by the recording window.
    pub total_ns: u64,
}

impl TelemetryReport {
    /// Looks up a phase by its `/`-joined path (e.g. `"commit/commit.stage"`).
    pub fn find(&self, path: &str) -> Option<&PhaseNode> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Simulated ns attributed to this node but to none of its children.
    pub fn self_ns(&self, idx: usize) -> u64 {
        let n = &self.phases[idx];
        let children: u64 = n.children.iter().map(|&c| self.phases[c].total_ns).sum();
        n.total_ns.saturating_sub(children)
    }

    /// Fraction of the phase's simulated ns attributed to named child
    /// phases (`None` if the phase is missing or empty). This is the
    /// number the commit-path acceptance check gates on.
    pub fn attributed_fraction(&self, path: &str) -> Option<f64> {
        let idx = self.phases.iter().position(|p| p.path == path)?;
        let total = self.phases[idx].total_ns;
        if total == 0 {
            return None;
        }
        Some(1.0 - self.self_ns(idx) as f64 / total as f64)
    }

    /// Merges two reports (e.g. per-seed campaign recordings): phase
    /// totals/counts sum by path, counters sum, gauges take `other`'s
    /// value on conflict, histograms merge, events concatenate.
    pub fn merge(&self, other: &TelemetryReport) -> TelemetryReport {
        // path -> (name, total_ns, count), BTreeMap so parents (string
        // prefixes) iterate before their children.
        let mut acc: BTreeMap<String, (String, u64, u64)> = BTreeMap::new();
        for r in [self, other] {
            for p in &r.phases[1..] {
                let e = acc
                    .entry(p.path.clone())
                    .or_insert_with(|| (p.name.clone(), 0, 0));
                e.1 += p.total_ns;
                e.2 += p.count;
            }
        }
        let mut phases = vec![PhaseNode {
            name: String::new(),
            path: String::new(),
            parent: None,
            children: Vec::new(),
            total_ns: self.total_ns + other.total_ns,
            count: 0,
        }];
        let mut idx_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (path, (name, total_ns, count)) in &acc {
            let parent = match path.rfind('/') {
                Some(cut) => idx_of.get(&path[..cut]).copied().unwrap_or(0),
                None => 0,
            };
            let idx = phases.len();
            phases.push(PhaseNode {
                name: name.clone(),
                path: path.clone(),
                parent: Some(parent),
                children: Vec::new(),
                total_ns: *total_ns,
                count: *count,
            });
            phases[parent].children.push(idx);
            idx_of.insert(path, idx);
        }

        let mut counters = self.counters.clone();
        for (k, v) in &other.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        let mut gauges = self.gauges.clone();
        for (k, v) in &other.gauges {
            gauges.insert(k.clone(), *v);
        }
        let mut hists = self.hists.clone();
        for (k, h) in &other.hists {
            hists
                .entry(k.clone())
                .and_modify(|mine| *mine = mine.merge(h))
                .or_insert_with(|| h.clone());
        }
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());

        TelemetryReport {
            phases,
            counters,
            gauges,
            hists,
            events,
            dropped_events: self.dropped_events + other.dropped_events,
            total_ns: self.total_ns + other.total_ns,
        }
    }

    /// Human-readable phase breakdown: tree with totals, share of parent,
    /// occurrence counts, and unattributed self time.
    pub fn phase_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "phase breakdown — {} simulated ns recorded",
            group_digits(self.total_ns)
        );
        self.render_node(&mut out, 0, 0);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<32} {}", group_digits(*v));
            }
        }
        let mut shown = false;
        for (k, h) in &self.hists {
            let (Some(p50), Some(p95), Some(p99), Some(max)) = (h.p50(), h.p95(), h.p99(), h.max())
            else {
                continue;
            };
            if !shown {
                let _ = writeln!(out, "latency histograms (ns):");
                shown = true;
            }
            let _ = writeln!(
                out,
                "  {k:<28} n={:<8} p50={p50:<10} p95={p95:<10} p99={p99:<10} max={max}",
                h.count()
            );
        }
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize) {
        let n = &self.phases[idx];
        if idx != 0 {
            let parent_total = self.phases[n.parent.unwrap_or(0)].total_ns;
            let share = if parent_total > 0 {
                n.total_ns as f64 * 100.0 / parent_total as f64
            } else {
                0.0
            };
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{}", n.name);
            let _ = writeln!(
                out,
                "{label:<34} {:>16} ns {share:>5.1}%  n={}",
                group_digits(n.total_ns),
                n.count
            );
        }
        for &c in &n.children {
            self.render_node(out, c, depth + if idx == 0 { 0 } else { 1 });
        }
        if idx != 0 && !n.children.is_empty() {
            let self_ns = self.self_ns(idx);
            if self_ns > 0 {
                let share = self_ns as f64 * 100.0 / n.total_ns.max(1) as f64;
                let indent = "  ".repeat(depth + 1);
                let label = format!("{indent}(self)");
                let _ = writeln!(
                    out,
                    "{label:<34} {:>16} ns {share:>5.1}%",
                    group_digits(self_ns)
                );
            }
        }
    }

    /// The whole report as one JSON value.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, p)| {
                Json::obj(vec![
                    ("path", p.path.as_str().into()),
                    ("name", p.name.as_str().into()),
                    ("total_ns", Json::U64(p.total_ns)),
                    ("self_ns", Json::U64(self.self_ns(i))),
                    ("count", Json::U64(p.count)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::I64(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), hist_json(h)))
            .collect();
        Json::obj(vec![
            ("total_ns", Json::U64(self.total_ns)),
            ("phases", Json::Arr(phases)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(hists)),
            ("events_recorded", Json::U64(self.events.len() as u64)),
            ("events_dropped", Json::U64(self.dropped_events)),
        ])
    }

    /// JSONL export: one JSON object per line (`meta`, `phase`, `counter`,
    /// `gauge`, `hist`, `event` records).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Json::obj(vec![
                ("type", "meta".into()),
                ("total_ns", Json::U64(self.total_ns)),
                ("events_dropped", Json::U64(self.dropped_events)),
            ])
            .render(),
        );
        out.push('\n');
        for (i, p) in self.phases.iter().enumerate().skip(1) {
            out.push_str(
                &Json::obj(vec![
                    ("type", "phase".into()),
                    ("path", p.path.as_str().into()),
                    ("total_ns", Json::U64(p.total_ns)),
                    ("self_ns", Json::U64(self.self_ns(i))),
                    ("count", Json::U64(p.count)),
                ])
                .render(),
            );
            out.push('\n');
        }
        for (k, v) in &self.counters {
            out.push_str(
                &Json::obj(vec![
                    ("type", "counter".into()),
                    ("name", k.as_str().into()),
                    ("value", Json::U64(*v)),
                ])
                .render(),
            );
            out.push('\n');
        }
        for (k, v) in &self.gauges {
            out.push_str(
                &Json::obj(vec![
                    ("type", "gauge".into()),
                    ("name", k.as_str().into()),
                    ("value", Json::I64(*v)),
                ])
                .render(),
            );
            out.push('\n');
        }
        for (k, h) in &self.hists {
            let mut fields = vec![
                ("type".to_string(), Json::from("hist")),
                ("name".to_string(), k.as_str().into()),
            ];
            if let Json::Obj(rest) = hist_json(h) {
                fields.extend(rest);
            }
            out.push_str(&Json::Obj(fields).render());
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(
                &Json::obj(vec![
                    ("type", "event".into()),
                    ("name", e.name.into()),
                    ("start_ns", Json::U64(e.start_ns)),
                    ("end_ns", Json::U64(e.end_ns)),
                    ("depth", Json::U64(u64::from(e.depth))),
                ])
                .render(),
            );
            out.push('\n');
        }
        out
    }

    /// chrome://tracing (Trace Event Format) export. Span events become
    /// `ph:"X"` complete events with microsecond timestamps; requires
    /// `Config::record_events`, otherwise only phase-summary counters are
    /// emitted.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace_events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("name", e.name.into()),
                    ("cat", "sim".into()),
                    ("ph", "X".into()),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(u64::from(e.depth))),
                    ("ts", Json::F64(e.start_ns as f64 / 1000.0)),
                    ("dur", Json::F64((e.end_ns - e.start_ns) as f64 / 1000.0)),
                ])
            })
            .collect();
        // Phase totals as instant metadata so a trace without events still
        // carries the breakdown.
        for (i, p) in self.phases.iter().enumerate().skip(1) {
            trace_events.push(Json::obj(vec![
                ("name", format!("total:{}", p.path).into()),
                ("cat", "summary".into()),
                ("ph", "C".into()),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(0)),
                ("ts", Json::F64(self.total_ns as f64 / 1000.0)),
                (
                    "args",
                    Json::obj(vec![
                        ("total_ns", Json::U64(p.total_ns)),
                        ("self_ns", Json::U64(self.self_ns(i))),
                        ("count", Json::U64(p.count)),
                    ]),
                ),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(trace_events)),
            ("displayTimeUnit", "ns".into()),
        ])
        .render()
    }
}

fn hist_json(h: &Histogram) -> Json {
    let buckets = h
        .nonzero_buckets()
        .into_iter()
        .map(|(upper, count)| Json::Arr(vec![Json::U64(upper), Json::U64(count)]))
        .collect();
    Json::obj(vec![
        ("count", Json::U64(h.count())),
        ("sum", Json::U64(h.sum())),
        ("min", h.min().map_or(Json::Null, Json::U64)),
        ("max", h.max().map_or(Json::Null, Json::U64)),
        ("p50", h.p50().map_or(Json::Null, Json::U64)),
        ("p95", h.p95().map_or(Json::Null, Json::U64)),
        ("p99", h.p99().map_or(Json::Null, Json::U64)),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// `1234567` → `"1,234,567"`.
fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TelemetryReport {
        // root -> a (100ns, child b 60ns), counter x=2
        let phases = vec![
            PhaseNode {
                name: String::new(),
                path: String::new(),
                parent: None,
                children: vec![1],
                total_ns: 120,
                count: 0,
            },
            PhaseNode {
                name: "a".into(),
                path: "a".into(),
                parent: Some(0),
                children: vec![2],
                total_ns: 100,
                count: 1,
            },
            PhaseNode {
                name: "b".into(),
                path: "a/b".into(),
                parent: Some(1),
                children: vec![],
                total_ns: 60,
                count: 3,
            },
        ];
        let mut counters = BTreeMap::new();
        counters.insert("x".to_string(), 2);
        TelemetryReport {
            phases,
            counters,
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
            dropped_events: 0,
            total_ns: 120,
        }
    }

    #[test]
    fn self_ns_and_attribution() {
        let r = tiny_report();
        assert_eq!(r.self_ns(1), 40);
        let f = r.attributed_fraction("a").unwrap();
        assert!((f - 0.6).abs() < 1e-9);
        assert!(r.find("a/b").is_some());
        assert!(r.find("nope").is_none());
    }

    #[test]
    fn merge_sums_by_path() {
        let r = tiny_report();
        let m = r.merge(&r);
        assert_eq!(m.total_ns, 240);
        let a = m.find("a").unwrap();
        assert_eq!(a.total_ns, 200);
        assert_eq!(a.count, 2);
        let b = m.find("a/b").unwrap();
        assert_eq!(b.total_ns, 120);
        assert_eq!(m.counters["x"], 4);
        // Tree structure survives the rebuild.
        let ai = m.phases.iter().position(|p| p.path == "a").unwrap();
        assert_eq!(m.self_ns(ai), 80);
    }

    #[test]
    fn exports_are_non_empty_and_parseable_shape() {
        let r = tiny_report();
        let jsonl = r.to_jsonl();
        assert!(jsonl.lines().count() >= 4);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let trace = r.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        let text = r.phase_report();
        assert!(text.contains("a/b") || text.contains("b"));
        assert!(text.contains("counters:"));
    }
}
