//! The phase taxonomy: every named span/charge point in the stack.
//!
//! Names are `&'static str` constants so call sites stay cheap (interning
//! keys on the pointer-free `(parent, name)` pair) and so the taxonomy is
//! greppable in one place. Dots group related phases (`commit.stage`); the
//! tree structure itself comes from span nesting at runtime, not from the
//! names.

/// Whole commit critical path (txn submit → durable commit point).
pub const COMMIT: &str = "commit";
/// Admission control: capacity/quarantine checks before staging.
pub const COMMIT_ADMISSION: &str = "commit.admission";
/// COW block staging: NVM block copy + per-block persist.
pub const COMMIT_STAGE: &str = "commit.stage";
/// 16-byte atomic mapping-entry update.
pub const COMMIT_ENTRY: &str = "commit.entry";
/// 8-byte ring-slot record + persist.
pub const COMMIT_RING: &str = "commit.ring";
/// Log→buffer role switch bookkeeping.
pub const COMMIT_ROLE_SWITCH: &str = "commit.role_switch";
/// Double-write fallback when no role switch is possible.
pub const COMMIT_DOUBLE_WRITE: &str = "commit.double_write";
/// Tail move: the atomic commit point (8B store + persist).
pub const COMMIT_POINT: &str = "commit.point";
/// Optional synchronous write-through to the backing disk.
pub const COMMIT_WRITE_THROUGH: &str = "commit.write_through";
/// Revoking staged blocks after a failed commit.
pub const COMMIT_REVOKE: &str = "commit.revoke";
/// Group commit: leader draining and committing a batch.
pub const COMMIT_GROUP_LEAD: &str = "commit.group.lead";
/// Group commit: follower waiting for its leader's commit point.
pub const COMMIT_GROUP_WAIT: &str = "commit.group.wait";
/// Two-phase spanning commit: intent publish, per-shard fragment
/// prepares, resolve, and window retirement (pool-level; the per-shard
/// fragment work nests `commit` spans underneath).
pub const COMMIT_SPANNING: &str = "commit.spanning";

/// Cache read path (hit or miss+fill).
pub const CACHE_READ: &str = "cache.read";
/// Eviction: choosing and reclaiming a victim block.
pub const CACHE_EVICT: &str = "cache.evict";
/// Dirty-block writeback to the backing disk.
pub const CACHE_WRITEBACK: &str = "cache.writeback";
/// Full-cache flush (drain all dirty blocks).
pub const CACHE_FLUSH_ALL: &str = "cache.flush_all";

/// Background destage pipeline (harvest + vectored writeback). Charged
/// outside the `commit` span: destage I/O overlaps foreground time and
/// only its stalls show up on the critical path.
pub const DESTAGE: &str = "destage";
/// Device time consumed by background vectored writebacks (busy-lane
/// time, not foreground wall time).
pub const DESTAGE_WRITEBACK: &str = "destage.writeback";
/// Foreground stall waiting for the destage lane to drain (explicit
/// drain, or the free pool emptied before the daemon caught up).
pub const DESTAGE_DRAIN: &str = "destage.drain";

/// Crash-recovery replay (entry scan, ring revoke, rebuild).
pub const RECOVERY: &str = "recovery";
/// Simulated backoff charged between failed-I/O retries.
pub const IO_RETRY_BACKOFF: &str = "io.retry_backoff";

/// NVM store path (cache-line writes into the overlay).
pub const NVM_STORE: &str = "nvm.store";
/// NVM load path.
pub const NVM_READ: &str = "nvm.read";
/// `clflush`/`clwb` of dirty or clean lines.
pub const NVM_FLUSH: &str = "nvm.flush";
/// Perf-smell mark: a `clflush` that hit a clean line (persisted nothing,
/// still paid latency). Count-only leaf under [`NVM_FLUSH`].
pub const NVM_FLUSH_CLEAN: &str = "nvm.flush.clean";
/// Store fence draining the flush epoch.
pub const NVM_FENCE: &str = "nvm.fence";
/// Perf-smell mark: an `sfence` whose flush epoch was empty (ordered
/// nothing). Count-only leaf under [`NVM_FENCE`].
pub const NVM_FENCE_EMPTY: &str = "nvm.fence.empty";
/// 8/16-byte failure-atomic stores.
pub const NVM_ATOMIC_STORE: &str = "nvm.atomic_store";

/// Block-device read (seek + transfer model).
pub const DISK_READ: &str = "disk.read";
/// Block-device write.
pub const DISK_WRITE: &str = "disk.write";
/// Seek/transfer cost charged by a *failed* I/O.
pub const DISK_FAULT: &str = "disk.fault";
/// Injected tail-latency spike.
pub const DISK_SPIKE: &str = "disk.spike";

/// JBD2-style journal commit (descriptor + data + commit record).
pub const JBD2_COMMIT: &str = "jbd2.commit";
/// Journal checkpoint (in-place writeback + head advance).
pub const JBD2_CHECKPOINT: &str = "jbd2.checkpoint";
/// Journal replay during mount.
pub const JBD2_REPLAY: &str = "jbd2.replay";

/// One file-system operation as issued by a workload.
pub const FS_OP: &str = "fs.op";
/// One seed of a crash/fault-fuzz campaign.
pub const CRASH_SEED: &str = "crash.seed";

/// Open-loop arrival-to-completion latency (queue wait + service) of one
/// served op, on the serving shard's simulated clock.
pub const OPENLOOP_LATENCY: &str = "openloop.latency";
/// Open-loop queue wait: arrival instant → service start.
pub const OPENLOOP_QUEUE_WAIT: &str = "openloop.queue_wait";
/// Open-loop service time: service start → completion.
pub const OPENLOOP_SERVICE: &str = "openloop.service";
/// Open-loop admission rejections (bounded queue full or token-bucket
/// throttle) — count-only.
pub const OPENLOOP_SHED: &str = "openloop.shed";
