//! The per-thread recorder behind the [`crate::span`]/[`crate::charge`]
//! facade: a phase tree keyed by `(parent, name)`, metric registries, and
//! an optional bounded event buffer.

use std::collections::{BTreeMap, HashMap};

use crate::clock::SimClock;
use crate::hist::Histogram;
use crate::report::{PhaseNode, TelemetryReport};

/// Recorder configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Record individual span events (needed for JSONL event streams and
    /// chrome://tracing output). Phase totals are always recorded.
    pub record_events: bool,
    /// Cap on buffered events; spans beyond it bump `dropped_events`
    /// instead of growing the buffer without bound.
    pub max_events: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            record_events: false,
            max_events: 200_000,
        }
    }
}

impl Config {
    /// Config with event recording on (bounded by the default cap).
    pub fn with_events() -> Self {
        Config {
            record_events: true,
            ..Config::default()
        }
    }
}

/// One completed span occurrence (only kept when `record_events` is set).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Phase name (from the [`crate::phase`] taxonomy).
    pub name: &'static str,
    /// Simulated time at span entry.
    pub start_ns: u64,
    /// Simulated time at span exit.
    pub end_ns: u64,
    /// Nesting depth at entry (root-level spans are 0).
    pub depth: u32,
}

/// A phase-tree node: one `name` as observed under one parent.
struct Node {
    name: &'static str,
    parent: u32,
    total_ns: u64,
    count: u64,
}

/// An open span on the stack.
struct Frame {
    node: u32,
    start_ns: u64,
}

/// Accumulates spans, charges, and metrics for one thread.
pub struct Recorder {
    clock: SimClock,
    cfg: Config,
    start_ns: u64,
    nodes: Vec<Node>,
    lookup: HashMap<(u32, &'static str), u32>,
    stack: Vec<Frame>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
    events: Vec<Event>,
    dropped_events: u64,
}

impl Recorder {
    pub fn new(clock: SimClock, cfg: Config) -> Self {
        let start_ns = clock.now_ns();
        Recorder {
            clock,
            cfg,
            start_ns,
            // Node 0 is the synthetic root covering the whole recording.
            nodes: vec![Node {
                name: "",
                parent: 0,
                total_ns: 0,
                count: 0,
            }],
            lookup: HashMap::new(),
            stack: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Node index for `name` under `parent`, creating it on first sight.
    fn intern(&mut self, parent: u32, name: &'static str) -> u32 {
        if let Some(&idx) = self.lookup.get(&(parent, name)) {
            return idx;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            name,
            parent,
            total_ns: 0,
            count: 0,
        });
        self.lookup.insert((parent, name), idx);
        idx
    }

    fn current(&self) -> u32 {
        self.stack.last().map_or(0, |f| f.node)
    }

    /// Opens a span named `name` under the current span.
    pub fn enter(&mut self, name: &'static str) {
        let parent = self.current();
        let node = self.intern(parent, name);
        let start_ns = self.clock.now_ns();
        self.stack.push(Frame { node, start_ns });
    }

    /// Closes the innermost open span, attributing elapsed simulated ns.
    pub fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let end_ns = self.clock.now_ns();
        let ns = end_ns.saturating_sub(frame.start_ns);
        let node = &mut self.nodes[frame.node as usize];
        node.total_ns += ns;
        node.count += 1;
        let name = node.name;
        self.hists.entry(name).or_default().record(ns);
        if self.cfg.record_events {
            if self.events.len() < self.cfg.max_events {
                self.events.push(Event {
                    name,
                    start_ns: frame.start_ns,
                    end_ns,
                    depth: self.stack.len() as u32,
                });
            } else {
                self.dropped_events += 1;
            }
        }
    }

    /// Attributes `ns` already-charged simulated nanoseconds to a leaf
    /// phase `cat` under the current span, without opening a span (for
    /// device charge points that advance the clock in one shot).
    pub fn charge(&mut self, cat: &'static str, ns: u64) {
        let parent = self.current();
        let node = self.intern(parent, cat);
        let n = &mut self.nodes[node as usize];
        n.total_ns += ns;
        n.count += 1;
        self.hists.entry(cat).or_default().record(ns);
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Bumps the occurrence count of leaf phase `name` under the current
    /// span without attributing any simulated time (and without touching
    /// the latency histograms). Used for per-phase event tallies — e.g.
    /// flush/fence perf smells — where *where in the tree* the event
    /// happened is the datum, not how long it took.
    pub fn mark(&mut self, name: &'static str, n: u64) {
        let parent = self.current();
        let node = self.intern(parent, name);
        self.nodes[node as usize].count += n;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Records `v` into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Rebinds the recorder to a different simulated clock (crash
    /// campaigns build a fresh stack — and clock — per seed). Open spans
    /// would straddle two timelines, so the span stack must be empty.
    pub fn swap_clock(&mut self, clock: &SimClock) {
        debug_assert!(
            self.stack.is_empty(),
            "swap_clock with open spans would attribute time across clocks"
        );
        self.clock = clock.clone();
        self.start_ns = self.start_ns.min(clock.now_ns());
    }

    /// Closes out the recording and builds the report. Any spans still
    /// open (e.g. a panic unwound past their guards without dropping them)
    /// are attributed up to "now".
    pub fn finish(mut self) -> TelemetryReport {
        while !self.stack.is_empty() {
            self.exit();
        }
        let end_ns = self.clock.now_ns();
        self.nodes[0].total_ns = end_ns.saturating_sub(self.start_ns);

        // Materialise paths and child lists (nodes[] is parent-before-child
        // by construction: a child is interned while its parent is open).
        let mut phases: Vec<PhaseNode> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let path = if i == 0 {
                String::new()
            } else if n.parent == 0 {
                n.name.to_string()
            } else {
                format!("{}/{}", phases[n.parent as usize].path, n.name)
            };
            phases.push(PhaseNode {
                name: n.name.to_string(),
                path,
                parent: (i != 0).then_some(n.parent as usize),
                children: Vec::new(),
                total_ns: n.total_ns,
                count: n.count,
            });
        }
        for i in 1..phases.len() {
            let p = phases[i].parent.unwrap_or(0);
            phases[p].children.push(i);
        }

        TelemetryReport {
            phases,
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            hists: self
                .hists
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            events: self.events,
            dropped_events: self.dropped_events,
            total_ns: end_ns.saturating_sub(self.start_ns),
        }
    }
}
