//! Simulated-time observability: spans, counters, gauges, latency
//! histograms, and machine-readable exporters — all driven by the shared
//! [`SimClock`], never wall time, so recordings are fully deterministic.
//!
//! # Design
//!
//! - **Zero-cost when disabled.** Every facade call first does one relaxed
//!   atomic load ([`is_enabled`]); with no recorder installed anywhere
//!   that's the entire cost. Spans only *read* the clock — they never
//!   advance it — so enabling telemetry cannot change any simulated
//!   result: stats, figure outputs, and crash behaviour stay bit-for-bit
//!   identical.
//! - **Thread-local recording.** [`install`] arms the calling thread;
//!   other threads (e.g. I/O worker pools) see no recorder and no-op.
//!   The global counter only gates the fast path.
//! - **Phase tree.** [`span`] guards nest; simulated ns are attributed to
//!   `(parent, name)` nodes, and [`charge`] attributes device-charged ns
//!   to a leaf without opening a span. `total − Σ children` is a node's
//!   unattributed *self* time, which the bench harness gates on.
//!
//! # Quick start
//!
//! ```
//! use telemetry::{Config, SimClock};
//!
//! let clock = SimClock::new();
//! let (result, report) = telemetry::record(&clock, Config::default(), || {
//!     let _commit = telemetry::span(telemetry::phase::COMMIT);
//!     {
//!         let _stage = telemetry::span(telemetry::phase::COMMIT_STAGE);
//!         clock.advance(700); // a device charging modelled latency
//!     }
//!     clock.advance(300);
//!     42
//! });
//! assert_eq!(result, 42);
//! let commit = report.find("commit").unwrap();
//! assert_eq!(commit.total_ns, 1000);
//! assert_eq!(report.find("commit/commit.stage").unwrap().total_ns, 700);
//! println!("{}", report.phase_report());
//! ```

mod clock;
mod hist;
mod json;
pub mod phase;
mod recorder;
mod report;

pub use clock::SimClock;
pub use hist::Histogram;
pub use json::Json;
pub use recorder::{Config, Event, Recorder};
pub use report::{PhaseNode, TelemetryReport};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of threads with an installed recorder. Zero ⇒ the facade's fast
/// path is one relaxed load and an immediate return.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// True if *any* thread currently records (cheap pre-filter; per-thread
/// state still decides whether this thread's calls do anything).
#[inline]
pub fn is_enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Arms telemetry on the calling thread, attributing simulated ns read
/// from `clock`. Replaces any recorder already installed on this thread
/// (discarding its data).
pub fn install(clock: &SimClock, cfg: Config) {
    RECORDER.with(|r| {
        let prev = r.borrow_mut().replace(Recorder::new(clock.clone(), cfg));
        if prev.is_none() {
            INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Disarms the calling thread and returns its finished report (`None` if
/// nothing was installed).
pub fn uninstall() -> Option<TelemetryReport> {
    RECORDER.with(|r| {
        let rec = r.borrow_mut().take()?;
        INSTALLED.fetch_sub(1, Ordering::Relaxed);
        Some(rec.finish())
    })
}

/// Rebinds this thread's recorder to a different clock (crash campaigns
/// rebuild the stack — and its clock — per seed). No-op when disabled.
/// Must not be called with spans open.
pub fn swap_clock(clock: &SimClock) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.swap_clock(clock);
        }
    });
}

/// An RAII span guard: attribution runs from construction to drop.
#[must_use = "a span attributes time until dropped; binding it to _ ends it immediately"]
pub struct Span {
    active: bool,
}

/// Opens a span named `name` (from the [`phase`] taxonomy) under the
/// current span. Returns an inert guard when telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: false };
    }
    let active = RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.enter(name);
            true
        } else {
            false
        }
    });
    Span { active }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                rec.exit();
            }
        });
    }
}

/// Attributes `ns` already-charged simulated nanoseconds to leaf phase
/// `cat` under the current span (for one-shot device charge points).
#[inline]
pub fn charge(cat: &'static str, ns: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.charge(cat, ns);
        }
    });
}

/// Bumps leaf phase `name` under the current span by `n` occurrences
/// without attributing simulated time (per-phase event tallies such as
/// flush/fence waste marks).
#[inline]
pub fn mark(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.mark(name, n);
        }
    });
}

/// Adds `n` to counter `name`.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.count(name, n);
        }
    });
}

/// Sets gauge `name` to `v`.
#[inline]
pub fn gauge(name: &'static str, v: i64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.gauge(name, v);
        }
    });
}

/// Records sample `v` into histogram `name`.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.observe(name, v);
        }
    });
}

/// Runs `f` with telemetry armed on this thread and returns its result
/// together with the report. The recorder is disarmed even if `f` panics.
pub fn record<T>(clock: &SimClock, cfg: Config, f: impl FnOnce() -> T) -> (T, TelemetryReport) {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            let _ = uninstall();
        }
    }
    install(clock, cfg);
    let guard = Disarm;
    let out = f();
    std::mem::forget(guard);
    let report = uninstall().expect("recorder installed above and not removed");
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        // No recorder on this thread (other test threads may have one, so
        // don't assert the global flag): every call must be a no-op.
        let _s = span("commit");
        charge("nvm.flush", 100);
        count("x", 1);
        observe("h", 5);
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_attribute_to_a_tree() {
        let clock = SimClock::new();
        let ((), report) = record(&clock, Config::default(), || {
            let _c = span("commit");
            {
                let _s = span("commit.stage");
                clock.advance(700);
                charge("nvm.flush", 100);
                clock.advance(100);
            }
            {
                let _p = span("commit.point");
                clock.advance(50);
            }
            clock.advance(150);
        });
        assert_eq!(report.total_ns, 1000);
        assert_eq!(report.find("commit").unwrap().total_ns, 1000);
        assert_eq!(report.find("commit/commit.stage").unwrap().total_ns, 800);
        assert_eq!(
            report
                .find("commit/commit.stage/nvm.flush")
                .unwrap()
                .total_ns,
            100
        );
        assert_eq!(report.find("commit/commit.point").unwrap().total_ns, 50);
        let commit_idx = report
            .phases
            .iter()
            .position(|p| p.path == "commit")
            .unwrap();
        assert_eq!(report.self_ns(commit_idx), 150);
        let f = report.attributed_fraction("commit").unwrap();
        assert!((f - 0.85).abs() < 1e-9);
    }

    #[test]
    fn repeated_spans_accumulate_and_feed_histograms() {
        let clock = SimClock::new();
        let ((), report) = record(&clock, Config::default(), || {
            for i in 0..10u64 {
                let _c = span("commit");
                clock.advance(100 + i);
            }
        });
        let commit = report.find("commit").unwrap();
        assert_eq!(commit.count, 10);
        assert_eq!(commit.total_ns, 10 * 100 + 45);
        let h = &report.hists["commit"];
        assert_eq!(h.count(), 10);
        assert!(h.p50().unwrap() >= 100);
    }

    #[test]
    fn counters_gauges_and_events() {
        let clock = SimClock::new();
        let ((), report) = record(&clock, Config::with_events(), || {
            count("commits", 3);
            count("commits", 2);
            gauge("dirty", 7);
            gauge("dirty", 4);
            let _s = span("commit");
            clock.advance(10);
        });
        assert_eq!(report.counters["commits"], 5);
        assert_eq!(report.gauges["dirty"], 4);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].name, "commit");
        assert_eq!(report.events[0].end_ns - report.events[0].start_ns, 10);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn event_cap_drops_beyond_max() {
        let clock = SimClock::new();
        let cfg = Config {
            record_events: true,
            max_events: 3,
        };
        let ((), report) = record(&clock, cfg, || {
            for _ in 0..5 {
                let _s = span("op");
                clock.advance(1);
            }
        });
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.dropped_events, 2);
        // Phase totals are unaffected by the event cap.
        assert_eq!(report.find("op").unwrap().count, 5);
    }

    #[test]
    fn swap_clock_keeps_attributing() {
        let a = SimClock::new();
        let ((), report) = record(&a, Config::default(), || {
            {
                let _s = span("crash.seed");
                a.advance(100);
            }
            let b = SimClock::new();
            swap_clock(&b);
            {
                let _s = span("crash.seed");
                b.advance(40);
            }
        });
        let seed = report.find("crash.seed").unwrap();
        assert_eq!(seed.count, 2);
        assert_eq!(seed.total_ns, 140);
    }

    #[test]
    fn record_disarms_on_panic() {
        let clock = SimClock::new();
        let caught = std::panic::catch_unwind(|| {
            record(&clock, Config::default(), || {
                let _s = span("commit");
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(uninstall().is_none(), "recorder leaked past the panic");
    }
}
