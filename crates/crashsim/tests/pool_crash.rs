//! Crash-fuzz campaign over the sharded pool: crash one shard mid-commit,
//! power-cycle all shards, recover, and verify durability, whole-
//! transaction atomicity across shards, and persist-order cleanliness on
//! every shard and on the merged pool-wide trace.

use crashsim::{pool_fuzz_campaign, pool_fuzz_one};

#[test]
fn four_shard_pool_survives_fuzz_campaign() {
    let report = pool_fuzz_campaign(4, 0x900D, 24, 40);
    assert!(
        report.clean(),
        "pool crash-consistency violations: {:#?}",
        report.violations
    );
    assert!(
        report.crashes > 0,
        "campaign never crashed — trips too late for the workload size"
    );
}

#[test]
fn single_shard_pool_survives_fuzz() {
    let report = pool_fuzz_campaign(1, 0x1D, 10, 40);
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert!(report.crashes > 0);
}

/// The spanning-commit acceptance sweep: 200 seeds of random-block
/// scripts (most transactions span shards), each crashing one shard at a
/// random persistence event — including between fragments and during the
/// intent publish/resolve — then power-cycling all shards. Zero torn
/// transactions tolerated.
#[test]
fn spanning_txns_all_or_nothing_200_seed_sweep() {
    let report = pool_fuzz_campaign(4, 0x59A7, 200, 40);
    assert!(
        report.clean(),
        "spanning crash-consistency violations: {:#?}",
        report.violations
    );
    // ~half the seeds trip mid-script (the rest complete first); keep a
    // wide margin so the assertion only catches a broken trip mechanism.
    assert!(report.crashes > 60, "crashes: {}", report.crashes);
}

#[test]
fn outcomes_are_deterministic_per_seed() {
    let a = pool_fuzz_one(4, 77, 30);
    let b = pool_fuzz_one(4, 77, 30);
    assert_eq!(a, b);
}
