//! Crash-fuzz campaign over the sharded pool: crash one shard mid-commit,
//! power-cycle all shards, recover, and verify durability, per-fragment
//! atomicity, and persist-order cleanliness on every shard.

use crashsim::{pool_fuzz_campaign, pool_fuzz_one};

#[test]
fn four_shard_pool_survives_fuzz_campaign() {
    let report = pool_fuzz_campaign(4, 0x900D, 24, 40);
    assert!(
        report.clean(),
        "pool crash-consistency violations: {:#?}",
        report.violations
    );
    assert!(
        report.crashes > 0,
        "campaign never crashed — trips too late for the workload size"
    );
}

#[test]
fn single_shard_pool_survives_fuzz() {
    let report = pool_fuzz_campaign(1, 0x1D, 10, 40);
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert!(report.crashes > 0);
}

#[test]
fn outcomes_are_deterministic_per_seed() {
    let a = pool_fuzz_one(4, 77, 30);
    let b = pool_fuzz_one(4, 77, 30);
    assert_eq!(a, b);
}
