//! Deterministic spanning-commit crash coverage.
//!
//! The fuzz sweep ([`crashsim::pool_fuzz_campaign`]) and the frontier
//! enumerator ([`crashsim::spanning_frontier_campaign`]) sample and
//! enumerate crash states; these tests instead **pin** the instants that
//! define the two-phase protocol's correctness argument:
//!
//! * a crash *between fragments* — after shard 0's fragment is prepared
//!   but before shard 1's lands — must roll the whole transaction back
//!   (the intent record still reads `PREPARED`);
//! * a crash *after the resolve store is fenced* must roll every prepared
//!   fragment forward (the record reads `RESOLVED`);
//! * a mid-sequence fragment failure (shard 1's fragment too large) must
//!   abort the intent and leave **nothing** visible, before and after a
//!   power cut.
//!
//! A full trip sweep over every persistence event of both devices then
//! proves the all-or-nothing property holds at *every* crash instant of a
//! spanning commit, not just the pinned ones.

use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use crashsim::quiet_crash_panics;
use nvmsim::{shard_devices, CrashPolicy, CrashTripped, Nvm, NvmConfig, NvmTech, SimClock};
use tinca::{PoolConfig, TincaConfig, TincaPool};

fn build_pool(shards: usize) -> (Vec<Nvm>, blockdev::Disk, PoolConfig) {
    let nvm_cfg = NvmConfig::new(shards * (256 << 10), NvmTech::Pcm).with_tracing();
    let devices = shard_devices(&nvm_cfg, shards);
    let clock = SimClock::new();
    telemetry::swap_clock(&clock);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let pool_cfg = PoolConfig {
        shards,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    };
    (devices, disk, pool_cfg)
}

fn fill(v: u8) -> [u8; BLOCK_SIZE] {
    [v; BLOCK_SIZE]
}

/// Commits one two-shard spanning transaction (block 0 → shard 0,
/// block 1 → shard 1); returns whether the armed trip fired.
fn try_spanning_commit(pool: &TincaPool) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut t = pool.init_txn();
        t.write(0, &fill(0xAA));
        t.write(1, &fill(0xBB));
        pool.commit(t).expect("spanning commit");
    }));
    match outcome {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashTripped>().is_some() => true,
        Err(p) => std::panic::resume_unwind(p),
    }
}

fn read_block(pool: &TincaPool, b: u64) -> [u8; BLOCK_SIZE] {
    let mut buf = [0u8; BLOCK_SIZE];
    pool.read(b, &mut buf).expect("read after recovery");
    buf
}

/// Arms a trip at persistence event `k` of device `dev`, runs the
/// spanning commit until it crashes, power-cycles every device
/// (volatile state lost), recovers, and returns the recovered pool.
fn crash_at(dev: usize, k: u64) -> (TincaPool, Vec<Nvm>) {
    let (devices, disk, pool_cfg) = build_pool(2);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
    devices[dev].set_trip(Some(k));
    let crashed = try_spanning_commit(&pool);
    devices[dev].set_trip(None);
    drop(pool);
    assert!(crashed, "trip {k} on device {dev} did not fire");
    for d in &devices {
        d.crash(CrashPolicy::LoseVolatile);
    }
    let pool = TincaPool::recover(devices.clone(), disk, pool_cfg).expect("recovery");
    (pool, devices)
}

/// Crash between fragments: the first persistence event on device 1
/// lands inside shard 1's fragment prepare, *after* shard 0's fragment
/// is fully prepared and the intent record is durably `PREPARED`.
/// Recovery must roll shard 0's prepared fragment back.
#[test]
fn crash_between_fragments_rolls_the_prepared_fragment_back() {
    quiet_crash_panics();
    let (pool, _devices) = crash_at(1, 1);
    assert_eq!(read_block(&pool, 0), fill(0), "shard 0 fragment leaked");
    assert_eq!(read_block(&pool, 1), fill(0), "shard 1 fragment leaked");
    let stats = pool.stats();
    assert!(
        stats.spanning_rolled_back >= 1,
        "recovery revoked no prepared fragment: {stats:?}"
    );
    assert_eq!(stats.spanning_rolled_forward, 0, "{stats:?}");
}

/// Full trip sweep: crash a spanning commit at **every** persistence
/// event of both devices in turn. Each recovered state must be
/// all-or-nothing, and the sweep must witness both protocol outcomes —
/// at least one state rolled back (intent still `PREPARED`) and at
/// least one rolled forward (resolve store already fenced).
#[test]
fn every_crash_instant_is_all_or_nothing() {
    quiet_crash_panics();
    // Probe: per-device persistence events consumed by one spanning commit.
    let spans: Vec<u64> = {
        let (devices, disk, pool_cfg) = build_pool(2);
        let pool = TincaPool::format(devices.clone(), disk, pool_cfg);
        let starts: Vec<u64> = devices.iter().map(|d| d.events()).collect();
        assert!(!try_spanning_commit(&pool), "probe crashed with no trip");
        devices
            .iter()
            .zip(&starts)
            .map(|(d, s)| d.events() - s)
            .collect()
    };
    assert!(
        spans.iter().all(|&e| e > 0),
        "probe saw no events: {spans:?}"
    );

    let (mut saw_rolled_back, mut saw_rolled_forward) = (false, false);
    for (dev, &events) in spans.iter().enumerate() {
        for k in 1..=events {
            let (pool, _devices) = crash_at(dev, k);
            let (b0, b1) = (read_block(&pool, 0), read_block(&pool, 1));
            let stats = pool.stats();
            if b0 == fill(0xAA) && b1 == fill(0xBB) {
                saw_rolled_forward |= stats.spanning_rolled_forward > 0;
            } else if b0 == fill(0) && b1 == fill(0) {
                saw_rolled_back |= stats.spanning_rolled_back > 0;
            } else {
                panic!(
                    "device {dev} trip {k}: torn spanning txn \
                     (block0={:#x}, block1={:#x})",
                    b0[0], b1[0]
                );
            }
        }
    }
    assert!(saw_rolled_back, "no crash instant exercised roll-back");
    assert!(
        saw_rolled_forward,
        "no crash instant exercised roll-forward"
    );
}

/// A mid-sequence fragment failure (shard 1's fragment exceeds its
/// shard's capacity after shard 0's fragment already prepared) must
/// abort the intent: the commit returns `Err`, nothing is visible, and
/// nothing resurfaces after a power cut — the pool stays usable.
#[test]
fn mid_sequence_fragment_failure_leaves_nothing_visible() {
    let (devices, disk, pool_cfg) = build_pool(2);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());

    // One block on shard 0, far more blocks on shard 1 than its cache
    // can hold: fragment 0 prepares, fragment 1 is refused.
    let mut t = pool.init_txn();
    t.write(0, &fill(0x5A));
    for i in 0..200u64 {
        t.write(1 + 2 * i, &fill(0x5B));
    }
    assert!(
        pool.commit(t).is_err(),
        "oversized spanning commit succeeded"
    );
    assert!(pool.stats().spanning_aborts >= 1, "abort not counted");

    // Nothing visible before the power cut…
    assert_eq!(read_block(&pool, 0), fill(0));
    assert_eq!(read_block(&pool, 1), fill(0));
    drop(pool);

    // …or after it.
    for d in &devices {
        d.crash(CrashPolicy::LoseVolatile);
    }
    let pool = TincaPool::recover(devices, disk, pool_cfg).expect("recovery");
    assert_eq!(read_block(&pool, 0), fill(0));
    assert_eq!(read_block(&pool, 1), fill(0));

    // The aborted intent must not wedge later spanning commits.
    let mut t = pool.init_txn();
    t.write(0, &fill(0x11));
    t.write(1, &fill(0x22));
    pool.commit(t).expect("post-abort spanning commit");
    assert_eq!(read_block(&pool, 0), fill(0x11));
    assert_eq!(read_block(&pool, 1), fill(0x22));
}

/// Every ring slot of shard `s` that still carries a nonzero intent tag,
/// as `(seq, tag)` pairs. The wraparound guard's structural invariant
/// says this is empty whenever no spanning window is open.
fn tagged_slots(pool: &TincaPool, s: usize) -> Vec<(u64, u8)> {
    pool.with_shard(s, |cache| {
        let layout = *cache.layout();
        (0..layout.ring_cap)
            .filter_map(|seq| {
                let raw = cache.nvm().read_u64(layout.ring_slot_addr(seq));
                let (_, tag) = tinca::split_slot(raw);
                (tag != 0).then_some((seq, tag))
            })
            .collect()
    })
}

fn commit_spanning_pair(pool: &TincaPool, v: u8) {
    let mut t = pool.init_txn();
    t.write(0, &fill(v));
    t.write(1, &fill(v ^ 0xFF));
    pool.commit(t).expect("spanning commit");
}

/// Wraparound guard (DESIGN §14): the intent tag keeps only the low
/// 7 bits of the intent id, so after 128 spanning commits a new intent's
/// tag collides with a stale one's. Retiring commits must scrub their
/// window's tags, so no stale tag ever survives on the device — even
/// after 130+ retirements, and even across a crash that resets the
/// intent-id counter to zero (forcing outright id reuse).
#[test]
fn intent_tag_wraparound_leaves_no_stale_tags() {
    quiet_crash_panics();
    let (devices, disk, pool_cfg) = build_pool(2);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());

    // Drive the 7-bit tag space around: ids 0..=129, tags wrap at 128.
    for i in 0..130u32 {
        commit_spanning_pair(&pool, (i % 251) as u8 + 1);
        for s in 0..2 {
            assert_eq!(
                tagged_slots(&pool, s),
                vec![],
                "stale tags on shard {s} after commit {i}"
            );
        }
    }
    assert!(pool.stats().spanning_commits >= 130);

    // Crash mid-commit *after* the wrap: the in-flight intent's tag
    // (id 130 → tag 0x82) equals intent 2's tag, whose slots went
    // through this very ring long ago. Recovery must judge only the open
    // window and come out clean + all-or-nothing.
    devices[1].set_trip(Some(1));
    let crashed = try_spanning_commit(&pool);
    devices[1].set_trip(None);
    drop(pool);
    assert!(crashed, "trip did not fire");
    for d in &devices {
        d.crash(CrashPolicy::LoseVolatile);
    }
    let pool = TincaPool::recover(devices.clone(), disk.clone(), pool_cfg.clone())
        .expect("recovery after wrap");
    let (b0, b1) = (read_block(&pool, 0), read_block(&pool, 1));
    let last = (129u32 % 251) as u8 + 1;
    let atomic = (b0 == fill(0xAA) && b1 == fill(0xBB)) // rolled forward
        || (b0 == fill(last) && b1 == fill(last ^ 0xFF)); // rolled back
    assert!(
        atomic,
        "post-wrap crash not all-or-nothing: block0={:#x} block1={:#x}",
        b0[0], b1[0]
    );
    for s in 0..2 {
        assert_eq!(
            tagged_slots(&pool, s),
            vec![],
            "stale tags on shard {s} after recovery"
        );
    }

    // Recovery reset the intent-id counter to 0: the next 130 spanning
    // commits reuse every id the pre-crash run already consumed. The
    // scrubbed ring makes that reuse collision-free.
    for i in 0..130u32 {
        commit_spanning_pair(&pool, (i % 250) as u8 + 1);
    }
    for s in 0..2 {
        assert_eq!(
            tagged_slots(&pool, s),
            vec![],
            "stale tags on shard {s} after id reuse"
        );
    }
    assert_eq!(read_block(&pool, 0), fill((129u32 % 250) as u8 + 1));
}
