//! The paper's §5.1 recoverability experiment, strengthened: both systems
//! must come back consistent from power cuts at arbitrary points; the
//! no-journal baseline must *not* (demonstrating that the consistency the
//! other two provide is real, not vacuous).

use crashsim::{
    fuzz_system, fuzz_system_mode, fuzz_system_opts, CrashHarness, FailureMode, FsOracle,
};
use fssim::stack::{StackConfig, System};
use nvmsim::CrashPolicy;

#[test]
fn tinca_survives_fuzzed_crashes() {
    let report = fuzz_system(System::Tinca, 1000, 30, 60);
    assert!(report.crashes > 0, "campaign should hit mid-run crashes");
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn classic_jbd2_survives_fuzzed_crashes() {
    let report = fuzz_system(System::Classic, 2000, 30, 60);
    assert!(report.crashes > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn tinca_without_role_switch_still_consistent() {
    // The ablation changes the cost, not the correctness.
    let report = fuzz_system(System::TincaNoRoleSwitch, 3000, 15, 40);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn ubj_survives_fuzzed_crashes() {
    // The §5.4.4 baseline provides the same consistency guarantee (at a
    // different cost), so it must pass the same campaign.
    let report = fuzz_system(System::Ubj, 4000, 30, 60);
    assert!(report.crashes > 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn tinca_batched_ring_survives_fuzzed_crashes() {
    // The batched-ring optimisation must not weaken crash consistency.
    let report = fuzz_system(System::TincaBatched, 4500, 20, 50);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn classic_logmeta_survives_fuzzed_crashes() {
    // The FlashTier/bcache-style metadata log must be as crash-safe as
    // the synchronous metadata blocks.
    let report = fuzz_system(System::ClassicLogMeta, 5000, 20, 50);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn tinca_destage_pipeline_survives_fuzzed_crashes() {
    // Write-behind destage + flush coalescing on a cache small enough
    // that the watermark daemon runs mid-script: power cuts landing
    // during background writeback must never lose an acknowledged fsync.
    let report = fuzz_system_opts(System::Tinca, 7000, 30, 60, FailureMode::PowerPull, true);
    assert!(report.crashes > 0, "campaign should hit mid-run crashes");
    assert!(report.clean(), "violations: {:?}", report.violations);
}

#[test]
fn process_kill_scenario_is_clean_for_both() {
    // §5.1's second failure scenario: killing the process loses DRAM but
    // the CPU caches drain, so everything stored reaches NVM.
    for (sys, seed) in [(System::Tinca, 61_000u64), (System::Classic, 62_000)] {
        let report = fuzz_system_mode(sys, seed, 15, 50, FailureMode::ProcessKill);
        assert!(report.clean(), "{}: {:?}", sys.name(), report.violations);
    }
}

#[test]
fn no_journal_baseline_can_lose_consistency() {
    // Without journaling there is no commit point: some crash must leave a
    // state that is neither pre- nor post-transaction.
    let mut violated = false;
    for seed in 0..200u64 {
        let mut cfg = StackConfig::tiny(System::ClassicNoJournal);
        cfg.txn_block_limit = 100_000;
        let mut h = CrashHarness::new(cfg);
        let mut oracle = FsOracle::new();
        h.run(|fs| {
            let f = fs.create("doc").unwrap();
            fs.write(f, 0, &[1u8; 20_000]).unwrap();
            fs.fsync().unwrap();
        });
        oracle.create("doc");
        oracle.write("doc", 0, &[1u8; 20_000]);
        oracle.committed();
        // Overwrite with version 2, crash mid-commit.
        let crashed = h.run_with_trip(20 + seed * 10, |fs| {
            let f = fs.open("doc").unwrap();
            fs.write(f, 0, &[2u8; 20_000]).unwrap();
            fs.fsync().unwrap();
        });
        oracle.write("doc", 0, &[2u8; 20_000]);
        if !crashed {
            continue;
        }
        h.crash_and_remount(CrashPolicy::Random(seed));
        if h.verify(&oracle).is_err() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "the no-journal baseline should exhibit torn states under crash"
    );
}

#[test]
fn quiescent_crash_preserves_exact_state() {
    for system in [System::Tinca, System::Classic] {
        let mut h = CrashHarness::new(StackConfig::tiny(system));
        let mut oracle = FsOracle::new();
        h.run(|fs| {
            for i in 0..5 {
                let f = fs.create(&format!("file{i}")).unwrap();
                fs.write(f, 0, format!("data {i}").as_bytes()).unwrap();
            }
            fs.fsync().unwrap();
        });
        for i in 0..5 {
            oracle.create(&format!("file{i}"));
            oracle.write(&format!("file{i}"), 0, format!("data {i}").as_bytes());
        }
        oracle.committed();
        assert!(oracle.quiescent());
        h.crash_and_remount(CrashPolicy::LoseVolatile);
        h.verify(&oracle)
            .unwrap_or_else(|e| panic!("{}: {e}", system.name()));
    }
}

#[test]
fn shadow_analyzer_observes_commits_and_stays_clean() {
    // Every harness runs the persist-order analyzer in shadow mode; on an
    // unmodified Tinca stack it must see real commit points and report
    // zero correctness violations — including across a crash/remount,
    // where recovery's ring close is itself a commit point.
    let mut h = CrashHarness::new(StackConfig::tiny(System::Tinca));
    h.run(|fs| {
        let f = fs.create("doc").unwrap();
        fs.write(f, 0, &[7u8; 8192]).unwrap();
        fs.fsync().unwrap();
    });
    let report = h.persist_report();
    assert!(report.commits >= 1, "analyzer must observe commit points");
    assert!(
        report.is_clean(),
        "unmodified protocol must be clean:\n{report}"
    );
    h.crash_and_remount(CrashPolicy::LoseVolatile);
    let report = h.persist_report();
    assert!(report.crashes >= 1, "the crash must appear in the trace");
    assert!(report.is_clean(), "recovery must stay clean:\n{report}");
}

#[test]
fn repeated_crash_remount_cycles() {
    // Five consecutive crash/recover cycles with work in between; state
    // must stay exact throughout (Tinca).
    let mut h = CrashHarness::new(StackConfig::tiny(System::Tinca));
    let mut oracle = FsOracle::new();
    h.run(|fs| {
        fs.create("log").unwrap();
        fs.fsync().unwrap();
    });
    oracle.create("log");
    oracle.committed();
    for round in 0..5u64 {
        let fill = round as u8 + 1;
        let crashed = h.run_with_trip(200 + round * 37, move |fs| {
            let f = fs.open("log").unwrap();
            fs.append(f, &[fill; 3000]).unwrap();
            fs.fsync().unwrap();
        });
        let offset = oracle.staged_state()["log"].len() as u64;
        oracle.write("log", offset, &[fill; 3000]);
        if !crashed {
            oracle.committed();
        }
        h.crash_and_remount(CrashPolicy::Random(round * 7 + 1));
        h.verify(&oracle)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        // Re-sync the oracle to whatever survived, then continue.
        let mut fresh = FsOracle::new();
        let fs = h.fs();
        let survived = fs.exists("log");
        assert!(survived, "committed file must never vanish");
        let ino = fs.open("log").unwrap();
        let size = fs.file_size(ino) as usize;
        let mut buf = vec![0u8; size];
        fs.read(ino, 0, &mut buf).unwrap();
        fresh.create("log");
        fresh.write("log", 0, &buf);
        fresh.committed();
        oracle = fresh;
    }
}
