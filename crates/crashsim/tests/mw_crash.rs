//! Crash campaigns for the multi-writer lock-free commit path: rounds of
//! concurrent windows crash mid-reservation, mid-staging,
//! mid-publication (descriptors flipped in rotated order), and
//! mid-sequencing; recovery must resume-or-roll-back each window exactly
//! once, keep every retired round durable, and leave every per-shard and
//! merged event trace persist-order clean.

use crashsim::{mw_frontier_campaign, mw_pool_fuzz_campaign, mw_pool_fuzz_one};

/// The multi-writer acceptance sweep: 200 seeds of multi-window rounds
/// (plus interleaved spanning transactions) against a two-shard pool,
/// each crashing one shard at a random persistence event and resolving
/// the un-fenced write-back state adversarially. Zero violations
/// tolerated.
#[test]
fn mw_commit_path_survives_200_seed_sweep() {
    let report = mw_pool_fuzz_campaign(2, 0x3757_0000, 200, 20);
    assert!(
        report.clean(),
        "multi-writer crash-consistency violations: {:#?}",
        report.violations
    );
    assert!(report.crashes > 60, "crashes: {}", report.crashes);
}

#[test]
fn mw_four_shard_pool_survives_fuzz() {
    let report = mw_pool_fuzz_campaign(4, 0x3757_4444, 30, 20);
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert!(report.crashes > 0);
}

#[test]
fn mw_single_shard_pool_survives_fuzz() {
    let report = mw_pool_fuzz_campaign(1, 0x3757_1111, 20, 20);
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert!(report.crashes > 0);
}

#[test]
fn mw_outcomes_are_deterministic_per_seed() {
    let a = mw_pool_fuzz_one(2, 1234, 20);
    let b = mw_pool_fuzz_one(2, 1234, 20);
    assert_eq!(a, b);
}

/// Bounded-exhaustive companion to the random sweep: every fence epoch
/// of a short multi-writer workload is crashed at every enumerated
/// persist frontier — covering, in particular, every combination of
/// published / unpublished / torn `STAGED` descriptors within a round.
#[test]
fn mw_frontier_enumeration_recovers_clean() {
    let report = mw_frontier_campaign(2, 0x3757_F0F0, 4, 6);
    assert!(
        report.clean(),
        "multi-writer frontier violations: {:#?}",
        report.violations
    );
    assert!(report.epochs_total > 0, "probe found no workload epochs");
    assert!(report.states_run >= 2 * report.epochs_total);
}
