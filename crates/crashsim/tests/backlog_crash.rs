//! Crash-mid-backlog campaign: a power cut while the open-loop tier is
//! overloaded (queue full, admission shedding) must never corrupt
//! recovery, and shed/queued ops must leave no trace.

use crashsim::{backlog_campaign, BacklogOutcome};

#[test]
fn campaign_over_seeds_is_clean_and_actually_crashes_mid_backlog() {
    let report = backlog_campaign(4, 0xB10C, 40);
    assert_eq!(report.runs, 40);
    assert!(
        report.crashes >= 10,
        "only {} trips fired — the campaign barely crashes",
        report.crashes
    );
    assert!(
        report.shed > 0,
        "no ops were shed: the overload never built a backlog"
    );
    assert!(
        report.clean(),
        "oracle violations:\n{}",
        report.violations.join("\n")
    );
}

#[test]
fn two_shard_campaign_is_clean() {
    let report = backlog_campaign(2, 0x2B10, 20);
    assert_eq!(report.runs, 20);
    assert!(report.clean(), "{:?}", report.violations);
    assert!(report.crashes + report.completed == 20);
}

#[test]
fn outcomes_are_deterministic_per_seed() {
    let a = crashsim::backlog_one(2, 11);
    let b = crashsim::backlog_one(2, 11);
    assert_eq!(a, b);
    assert!(!matches!(a, BacklogOutcome::Violation(_)), "{a:?}");
}
