//! Crash fuzzing for the sharded [`TincaPool`] front-end.
//!
//! The FS-level fuzzer ([`crate::fuzz`]) exercises one single-threaded
//! stack. This module attacks the pool: a seeded script of block
//! transactions runs against an `N`-shard pool with a crash trip armed on
//! **one** shard's NVM device; when it fires mid-commit, *every* shard is
//! power-cycled (each resolving its un-fenced write-back state
//! adversarially), the pool is recovered shard by shard, and the result is
//! verified:
//!
//! * every shard passes `check_consistency`;
//! * every transaction committed before the crash reads back exactly;
//! * the in-flight transaction is all-or-nothing **across every shard it
//!   touches** — the scripts draw random blocks, so most transactions
//!   span shards and exercise the pool's two-phase spanning commit; a
//!   crash between fragments (or during intent publish/resolve) must
//!   leave the whole transaction either fully visible or fully rolled
//!   back after recovery;
//! * every shard's event trace passes the persist-order analyzer — the
//!   crash on one shard must not leave any other shard's commit stream
//!   unflushed, unfenced, or torn — and so does the **merged**
//!   multi-shard trace (intent publish/resolve/retire annotations
//!   included).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{Disk, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{merge_shard_traces, shard_devices, CrashPolicy, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinca::{PoolConfig, TincaConfig, TincaPool};

use crate::app::{campaign, run_recoverable, AppOutcome, RecoverableApp};
use crate::quiet_crash_panics;

/// One pool-fuzz iteration's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolFuzzOutcome {
    /// The script completed before the trip fired.
    Completed,
    /// Crash injected; all shards recovered and verified clean.
    CrashedVerified,
    /// Verification failed — a consistency bug.
    Violation(String),
}

impl From<AppOutcome> for PoolFuzzOutcome {
    fn from(o: AppOutcome) -> PoolFuzzOutcome {
        match o {
            AppOutcome::Completed => PoolFuzzOutcome::Completed,
            AppOutcome::CrashedVerified => PoolFuzzOutcome::CrashedVerified,
            AppOutcome::Violation(v) => PoolFuzzOutcome::Violation(v),
        }
    }
}

/// Aggregate over a pool-fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct PoolFuzzReport {
    pub runs: u64,
    pub completed: u64,
    pub crashes: u64,
    pub violations: Vec<String>,
}

impl PoolFuzzReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One scripted transaction: disjoint (block, fill) writes.
type TxnSpec = Vec<(u64, u8)>;

fn script(rng: &mut StdRng, txns: usize, blocks: u64) -> Vec<TxnSpec> {
    (0..txns)
        .map(|_| {
            let n = rng.gen_range(1..=4usize);
            let mut spec: TxnSpec = Vec::with_capacity(n);
            while spec.len() < n {
                let b = rng.gen_range(0..blocks);
                if spec.iter().all(|(x, _)| *x != b) {
                    spec.push((b, rng.gen_range(1..=255)));
                }
            }
            spec
        })
        .collect()
}

fn fill(v: u8) -> [u8; BLOCK_SIZE] {
    [v; BLOCK_SIZE]
}

/// Runs one seeded crash-fuzz iteration against an `N`-shard pool.
pub fn pool_fuzz_one(shards: usize, seed: u64, txns: usize) -> PoolFuzzOutcome {
    run_recoverable(&mut PoolApp::new(shards, seed, txns)).into()
}

/// The pool-level crash application: scripted block transactions against
/// an `N`-shard pool, with a durable block → fill-byte oracle.
struct PoolApp {
    pool: TincaPool,
    devices: Vec<Nvm>,
    disk: Disk,
    pool_cfg: PoolConfig,
    metadata_ranges: Vec<Vec<std::ops::Range<usize>>>,
    plan: Vec<TxnSpec>,
    /// Durable oracle: block → last committed fill byte.
    durable: HashMap<u64, u8>,
    committed: usize,
    shards: usize,
    trip_shard: usize,
    trip: u64,
    seed: u64,
    _seed_span: telemetry::Span,
}

impl PoolApp {
    fn new(shards: usize, seed: u64, txns: usize) -> PoolApp {
        quiet_crash_panics();
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = 96u64;

        let nvm_cfg = NvmConfig::new(shards * (256 << 10), NvmTech::Pcm).with_tracing();
        let devices: Vec<Nvm> = shard_devices(&nvm_cfg, shards);
        let clock = SimClock::new();
        telemetry::swap_clock(&clock);
        let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        let pool_cfg = PoolConfig {
            shards,
            cache: TincaConfig {
                ring_bytes: 4096,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        };
        let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
        let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();

        let plan = script(&mut rng, txns, blocks);
        let trip_shard = (seed % shards as u64) as usize;
        let trip = rng.gen_range(1..4_000u64);
        devices[trip_shard].set_trip(Some(trip));
        PoolApp {
            pool,
            devices,
            disk,
            pool_cfg,
            metadata_ranges,
            plan,
            durable: HashMap::new(),
            committed: 0,
            shards,
            trip_shard,
            trip,
            seed,
            _seed_span,
        }
    }
}

impl RecoverableApp for PoolApp {
    fn run_to_trip(&mut self) -> bool {
        let crashed = {
            let durable = &mut self.durable;
            let committed = &mut self.committed;
            let pool = &self.pool;
            let plan = &self.plan;
            catch_unwind(AssertUnwindSafe(move || {
                for spec in plan {
                    let mut t = pool.init_txn();
                    for (b, v) in spec {
                        t.write(*b, &fill(*v));
                    }
                    pool.commit(t).expect("fuzz commit");
                    for (b, v) in spec {
                        durable.insert(*b, *v);
                    }
                    *committed += 1;
                }
            }))
            .is_err()
        };
        self.devices[self.trip_shard].set_trip(None);
        crashed
    }

    fn crash_recover(&mut self) -> Result<(), String> {
        // Power failure: every shard resolves its volatile state
        // adversarially.
        for (s, d) in self.devices.iter().enumerate() {
            d.crash(CrashPolicy::Random(self.seed ^ 0xD1CE ^ (s as u64) << 17));
        }
        match TincaPool::recover(
            self.devices.clone(),
            self.disk.clone(),
            self.pool_cfg.clone(),
        ) {
            Ok(p) => {
                self.pool = p;
                Ok(())
            }
            Err(e) => {
                let (seed, trip, trip_shard) = (self.seed, self.trip, self.trip_shard);
                Err(format!(
                    "seed {seed} trip {trip}@shard{trip_shard}: recovery failed: {e}"
                ))
            }
        }
    }

    fn verify(&mut self) -> Result<(), String> {
        verify(
            &self.pool,
            &self.devices,
            &self.metadata_ranges,
            &self.durable,
            &self.plan[self.committed],
            self.shards,
        )
        .map_err(|e| {
            let (seed, trip, trip_shard) = (self.seed, self.trip, self.trip_shard);
            format!("seed {seed} trip {trip}@shard{trip_shard}: {e}")
        })
    }
}

fn verify(
    pool: &TincaPool,
    devices: &[Nvm],
    metadata_ranges: &[Vec<std::ops::Range<usize>>],
    durable: &HashMap<u64, u8>,
    in_flight: &TxnSpec,
    shards: usize,
) -> Result<(), String> {
    // 1. Internal invariants of every shard.
    pool.check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;

    // 2. Persist-order cleanliness of every shard's full event trace
    //    (format + workload + crash + recovery), and of the merged
    //    pool-wide trace — the intent record's publish/resolve/retire
    //    stores on shard 0 must be ordered like any other commit point.
    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(trace);
        let report = checker.report();
        if !report.is_clean() {
            return Err(format!("shard {s} persist-order violation: {report}"));
        }
    }
    let shard_capacity = devices[0].capacity();
    let merged_ranges: Vec<_> = metadata_ranges
        .iter()
        .enumerate()
        .flat_map(|(s, ranges)| {
            let base = s * shard_capacity;
            ranges.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let report = checker.report();
    if !report.is_clean() {
        return Err(format!("merged-trace persist-order violation: {report}"));
    }

    // 3. Committed transactions are durable; the in-flight transaction is
    //    all-or-nothing across every shard it touches. Blocks whose
    //    in-flight value equals their last committed value cannot witness
    //    either outcome and are skipped (same disambiguation the FS-level
    //    oracle uses).
    let staged: HashMap<u64, u8> = in_flight.iter().copied().collect();
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in durable {
        if staged.contains_key(&b) {
            continue; // judged as part of the in-flight check below
        }
        pool.read(b, &mut buf).expect("poolfuzz runs fault-free");
        if buf != fill(v) {
            return Err(format!(
                "durable block {b}: expected fill {v:#x}, read {:#x}",
                buf[0]
            ));
        }
    }
    let mut news: Vec<u64> = Vec::new();
    let mut olds: Vec<u64> = Vec::new();
    for &(b, v) in in_flight {
        let old = durable.get(&b).copied().unwrap_or(0);
        if old == v {
            continue; // uninformative: both outcomes read alike
        }
        pool.read(b, &mut buf).expect("poolfuzz runs fault-free");
        if buf == fill(v) {
            news.push(b);
        } else if buf == fill(old) {
            olds.push(b);
        } else {
            return Err(format!("in-flight block {b} is torn: read {:#x}", buf[0]));
        }
    }
    if !news.is_empty() && !olds.is_empty() {
        let spanned: std::collections::HashSet<usize> = in_flight
            .iter()
            .map(|(b, _)| (*b % shards as u64) as usize)
            .collect();
        return Err(format!(
            "in-flight txn over shards {spanned:?} not atomic: \
             blocks {news:?} read new, {olds:?} read old"
        ));
    }
    Ok(())
}

/// Runs a pool-fuzz campaign of `runs` seeds.
pub fn pool_fuzz_campaign(shards: usize, base_seed: u64, runs: u64, txns: usize) -> PoolFuzzReport {
    let r = campaign(runs, false, |i| {
        run_recoverable(&mut PoolApp::new(shards, base_seed + i, txns))
    });
    PoolFuzzReport {
        runs: r.runs,
        completed: r.completed,
        crashes: r.crashes,
        violations: r.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(script(&mut a, 20, 64), script(&mut b, 20, 64));
    }

    #[test]
    fn scripted_txns_have_distinct_blocks() {
        let mut rng = StdRng::seed_from_u64(11);
        for spec in script(&mut rng, 50, 16) {
            let mut blocks: Vec<u64> = spec.iter().map(|(b, _)| *b).collect();
            blocks.sort_unstable();
            blocks.dedup();
            assert_eq!(blocks.len(), spec.len());
        }
    }
}
