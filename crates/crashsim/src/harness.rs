//! The crash harness: run a workload against a stack with a trip armed,
//! crash, remount, verify against the oracle.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fssim::stack::{build, remount, Stack, StackConfig};
use fssim::FsSim;
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig};
use persistcheck::{CheckConfig, Checker, Report};

use crate::FsOracle;

/// Suppresses panic-hook output for the *expected* [`CrashTripped`] panics
/// crash injection produces. Install once per process (idempotent).
pub fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

/// What the post-recovery verification found.
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// The observed state is neither the durable nor the staged state.
    TornState(String),
    /// Cache- or FS-internal invariants violated.
    Inconsistent(String),
    /// The shadow persist-order analyzer flagged the event trace (a store
    /// reached a commit point unflushed, unfenced, or tearably written).
    PersistOrder(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::TornState(m) => write!(f, "torn state: {m}"),
            VerifyError::Inconsistent(m) => write!(f, "inconsistent internals: {m}"),
            VerifyError::PersistOrder(m) => write!(f, "persist-order violation: {m}"),
        }
    }
}

/// Drives one crash experiment on one stack. Every harness runs the
/// persist-order analyzer in shadow mode: the NVM device records its
/// event trace (no effect on simulated time), and [`Self::verify`] fails
/// if any commit point was reached with unflushed or unfenced stores.
pub struct CrashHarness {
    cfg: StackConfig,
    stack: Option<Stack>,
    checker: Checker,
}

impl CrashHarness {
    /// Builds a fresh stack with event tracing enabled.
    pub fn new(mut cfg: StackConfig) -> Self {
        quiet_crash_panics();
        let nvm_cfg = cfg
            .nvm_override
            .take()
            .unwrap_or_else(|| NvmConfig::new(cfg.nvm_bytes, cfg.nvm_tech));
        cfg.nvm_override = Some(nvm_cfg.with_tracing());
        let stack = build(&cfg).expect("stack build");
        let checker = Checker::new(CheckConfig::with_metadata(
            stack.fs.backend().metadata_ranges(),
        ));
        Self {
            cfg,
            stack: Some(stack),
            checker,
        }
    }

    /// Feeds the events traced since the last drain to the analyzer.
    fn drain_trace(&mut self) {
        if let Some(stack) = self.stack.as_ref() {
            self.checker.push_all(&stack.nvm.take_trace());
        }
    }

    /// The analyzer's cumulative view of this harness's event trace.
    pub fn persist_report(&mut self) -> Report {
        self.drain_trace();
        self.checker.report()
    }

    /// The live file system (panics after a crash until remounted).
    pub fn fs(&mut self) -> &mut FsSim {
        &mut self.stack.as_mut().expect("stack live").fs
    }

    /// The live stack.
    pub fn stack(&self) -> &Stack {
        self.stack.as_ref().expect("stack live")
    }

    /// Runs `workload` with a crash trip armed `trip` persistence events
    /// from now. Returns `true` if the trip fired (workload interrupted).
    pub fn run_with_trip<F>(&mut self, trip: u64, workload: F) -> bool
    where
        F: FnOnce(&mut FsSim),
    {
        let stack = self.stack.as_mut().expect("stack live");
        stack.nvm.set_trip(Some(trip));
        let outcome = catch_unwind(AssertUnwindSafe(|| workload(&mut stack.fs)));
        stack.nvm.set_trip(None);
        match outcome {
            Ok(()) => false,
            // Only the injected crash counts as a crash; a workload bug
            // must fail the campaign, not hide behind crash verification.
            Err(p) if p.downcast_ref::<CrashTripped>().is_some() => true,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Runs `workload` with no trip (must complete).
    pub fn run<F>(&mut self, workload: F)
    where
        F: FnOnce(&mut FsSim),
    {
        let stack = self.stack.as_mut().expect("stack live");
        workload(&mut stack.fs);
    }

    /// Total persistence events so far (to size trip sweeps).
    pub fn events(&self) -> u64 {
        self.stack().nvm.events()
    }

    /// Simulates the power failure and reboots the stack: DRAM state is
    /// discarded, the NVM resolves its volatile write-back state per
    /// `policy`, and cache + file system run their recovery paths.
    pub fn crash_and_remount(&mut self, policy: CrashPolicy) {
        let stack = self.stack.take().expect("stack live");
        let (nvm, disk, clock) = (stack.nvm, stack.disk, stack.clock);
        drop(stack.fs);
        nvm.crash(policy);
        let rebooted = remount(&self.cfg, nvm, disk, clock).expect("remount after crash");
        self.stack = Some(rebooted);
    }

    /// Like [`Self::crash_and_remount`], but the power failure resolves to
    /// an *exact* persist frontier: of the lines staged in the open fence
    /// epoch, precisely those in `keep` persist; everything else (other
    /// staged lines, all dirty overlay lines) drops. The crash-frontier
    /// enumerator drives this once per reachable frontier.
    pub fn crash_frontier_and_remount(&mut self, keep: &std::collections::HashSet<usize>) {
        let stack = self.stack.take().expect("stack live");
        let (nvm, disk, clock) = (stack.nvm, stack.disk, stack.clock);
        drop(stack.fs);
        nvm.crash_frontier(keep);
        let rebooted = remount(&self.cfg, nvm, disk, clock).expect("remount after crash");
        self.stack = Some(rebooted);
    }

    /// Checks the recovered state against the oracle: internal invariants
    /// hold, and the visible file set + contents equal either the durable
    /// or the staged state (all-or-nothing).
    pub fn verify(&mut self, oracle: &FsOracle) -> Result<(), VerifyError> {
        self.drain_trace();
        let report = self.checker.report();
        if !report.is_clean() {
            return Err(VerifyError::PersistOrder(report.to_string()));
        }
        let stack = self.stack.as_mut().expect("stack live");
        stack
            .fs
            .backend()
            .check()
            .map_err(VerifyError::Inconsistent)?;
        stack
            .fs
            .check_consistency()
            .map_err(VerifyError::Inconsistent)?;

        let durable_diff = diff_state(&mut stack.fs, oracle.durable_state());
        if durable_diff.is_none() {
            return Ok(());
        }
        let staged_diff = diff_state(&mut stack.fs, oracle.staged_state());
        if staged_diff.is_none() {
            return Ok(());
        }
        Err(VerifyError::TornState(format!(
            "vs durable: {}; vs staged: {}",
            durable_diff.unwrap(),
            staged_diff.unwrap()
        )))
    }

    /// The stack configuration in use.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }
}

/// Compares the mounted FS against an expected name→contents map.
/// Returns `None` on an exact match, or a description of the first
/// difference.
fn diff_state(
    fs: &mut FsSim,
    expected: &std::collections::HashMap<String, Vec<u8>>,
) -> Option<String> {
    if fs.file_count() != expected.len() {
        return Some(format!(
            "file count {} != expected {}",
            fs.file_count(),
            expected.len()
        ));
    }
    for (name, want) in expected {
        let Ok(ino) = fs.open(name) else {
            return Some(format!("missing file {name}"));
        };
        if fs.file_size(ino) != want.len() as u64 {
            return Some(format!(
                "{name}: size {} != {}",
                fs.file_size(ino),
                want.len()
            ));
        }
        let mut buf = vec![0u8; want.len()];
        fs.read(ino, 0, &mut buf).ok()?;
        if &buf != want {
            let pos = buf.iter().zip(want).position(|(a, b)| a != b).unwrap_or(0);
            return Some(format!("{name}: contents differ at byte {pos}"));
        }
    }
    None
}
