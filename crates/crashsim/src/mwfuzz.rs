//! Crash campaigns for the **multi-writer lock-free commit path**
//! (`CommitMode::LockFreeRing`, DESIGN §16).
//!
//! The mutex-path campaigns ([`crate::poolfuzz`], [`crate::frontier`])
//! never leave more than one window in flight per shard. This module
//! drives the steppable window API directly — each *round* reserves and
//! stages several disjoint windows (possibly on the same shard), publishes
//! their `STAGED` descriptors in a rotated order, and only then runs the
//! sequencer — so a crash can land:
//!
//! * between a window's reservation and its payload staging,
//! * **mid-publication**: some descriptors `STAGED`, some still
//!   `RESERVED`, in any ring order (the rotation makes later windows
//!   publish first);
//! * inside the sequencer round, around the fence and the `Head` store;
//! * inside a spanning prepare interleaved with the multi-writer stream.
//!
//! Recovery must resume-or-roll-back each window exactly once: every
//! transaction whose round retired before the crash reads back exactly,
//! every other transaction is all-or-nothing, and every shard's trace —
//! plus the merged pool-wide trace — passes the persist-order analyzer.
//!
//! Two campaigns: [`mw_pool_fuzz_campaign`] (random trip + adversarial
//! write-back resolution per seed) and [`mw_frontier_campaign`] (bounded
//! exhaustive enumeration of every fence epoch's persist frontiers,
//! subsuming every line-granular crash state of the random sweep).

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{Disk, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{
    merge_shard_traces, shard_devices, CrashPolicy, CrashTripped, Nvm, NvmConfig, NvmTech, SimClock,
};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinca::{CommitMode, MwAdmission, MwTicket, PoolConfig, TincaConfig, TincaPool};

use crate::app::{campaign, run_recoverable, RecoverableApp};
use crate::frontier::{epochs_from_trace, frontier_enumerate, FenceEpoch, FrontierReport};
use crate::poolfuzz::{PoolFuzzOutcome, PoolFuzzReport};
use crate::quiet_crash_panics;

/// One scripted transaction: disjoint (block, fill) writes.
type TxnSpec = Vec<(u64, u8)>;

/// One step of the multi-writer plan.
#[derive(Clone, Debug)]
enum MwRound {
    /// Concurrent single-shard windows: all reserved and staged, then
    /// published in a rotated order, then sequenced.
    Writers(Vec<TxnSpec>),
    /// One transaction touching every shard, committed through the
    /// spanning two-phase path (which quiesces the ring first).
    Spanning(TxnSpec),
}

impl MwRound {
    fn specs(&self) -> &[TxnSpec] {
        match self {
            MwRound::Writers(specs) => specs,
            MwRound::Spanning(spec) => std::slice::from_ref(spec),
        }
    }
}

fn fill(v: u8) -> [u8; BLOCK_SIZE] {
    [v; BLOCK_SIZE]
}

/// Seeded plan: mostly multi-window rounds (1–3 windows of 1–2 blocks,
/// pairwise block-disjoint so admissions never conflict), with an
/// occasional spanning transaction when the pool has several shards.
fn mw_script(rng: &mut StdRng, rounds: usize, blocks: u64, shards: u64) -> Vec<MwRound> {
    (0..rounds)
        .map(|_| {
            if shards > 1 && rng.gen_range(0..5) == 0 {
                let base = rng.gen_range(0..blocks / shards);
                return MwRound::Spanning(
                    (0..shards)
                        .map(|s| (base * shards + s, rng.gen_range(1..=255)))
                        .collect(),
                );
            }
            let k = rng.gen_range(1..=3usize);
            let mut used: HashSet<u64> = HashSet::new();
            let specs = (0..k)
                .map(|_| {
                    let s = rng.gen_range(0..shards);
                    let n = rng.gen_range(1..=2usize);
                    let mut spec: TxnSpec = Vec::with_capacity(n);
                    while spec.len() < n {
                        let b = rng.gen_range(0..blocks / shards) * shards + s;
                        if used.insert(b) {
                            spec.push((b, rng.gen_range(1..=255)));
                        }
                    }
                    spec
                })
                .collect();
            MwRound::Writers(specs)
        })
        .collect()
}

fn build_mw_pool(shards: usize) -> (Vec<Nvm>, Disk, PoolConfig) {
    let nvm_cfg = NvmConfig::new(shards * (256 << 10), NvmTech::Pcm).with_tracing();
    let devices = shard_devices(&nvm_cfg, shards);
    let clock = SimClock::new();
    telemetry::swap_clock(&clock);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let pool_cfg = PoolConfig {
        shards,
        commit_mode: CommitMode::LockFreeRing,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    };
    (devices, disk, pool_cfg)
}

/// Plays `plan` on the calling thread through the steppable window API;
/// returns `(rounds_done, crashed)`. Any panic other than the armed
/// [`CrashTripped`] propagates. The driving is deterministic, so every
/// device's event stream is replay-stable — which both the per-seed
/// determinism of the fuzzer and the frontier campaign's trip replay
/// depend on.
fn run_mw_plan(pool: &TincaPool, plan: &[MwRound]) -> (usize, bool) {
    let mut done = 0usize;
    let outcome = {
        let done = &mut done;
        catch_unwind(AssertUnwindSafe(move || {
            for (round, step) in plan.iter().enumerate() {
                match step {
                    MwRound::Spanning(spec) => {
                        let mut t = pool.init_txn();
                        for (b, v) in spec {
                            t.write(*b, &fill(*v));
                        }
                        pool.commit(t).expect("mw spanning commit");
                    }
                    MwRound::Writers(specs) => {
                        let mut tickets: Vec<MwTicket> = Vec::with_capacity(specs.len());
                        for spec in specs {
                            let mut t = pool.init_txn();
                            for (b, v) in spec {
                                t.write(*b, &fill(*v));
                            }
                            match pool.mw_try_begin(t).expect("mw admission") {
                                MwAdmission::Admitted(tk) => tickets.push(tk),
                                // Rounds are block-disjoint and fully
                                // retired before the next one starts.
                                MwAdmission::Busy(_) => {
                                    panic!("unexpected Busy admission in disjoint round")
                                }
                            }
                        }
                        for tk in tickets.iter_mut() {
                            pool.mw_stage(tk);
                        }
                        // Publish out of ring order: the rotation makes the
                        // crash land with arbitrary STAGED/RESERVED mixes.
                        tickets.rotate_left(round % specs.len().max(1));
                        let mut touched: Vec<usize> = Vec::new();
                        for tk in tickets.drain(..) {
                            if !touched.contains(&tk.shard()) {
                                touched.push(tk.shard());
                            }
                            pool.mw_publish(tk);
                        }
                        for s in touched {
                            while pool.mw_sequence(s) > 0 {}
                        }
                    }
                }
                *done += 1;
            }
        }))
    };
    let crashed = match outcome {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashTripped>().is_some() => true,
        Err(p) => std::panic::resume_unwind(p),
    };
    (done, crashed)
}

/// Post-recovery oracle shared by both campaigns: internals, per-shard
/// and merged persist-order cleanliness, durability of retired rounds,
/// and per-transaction all-or-nothing for the crashed round's windows
/// (each window is an independent transaction — unlike the spanning
/// oracle they need not agree with each other, only with themselves).
fn verify_mw(
    pool: &TincaPool,
    devices: &[Nvm],
    metadata_ranges: &[Vec<std::ops::Range<usize>>],
    durable: &HashMap<u64, u8>,
    in_flight: &[TxnSpec],
) -> Result<(), String> {
    pool.check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;

    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(trace);
        let rep = checker.report();
        if !rep.is_clean() {
            return Err(format!("shard {s} analyzer violation: {rep}"));
        }
    }
    let shard_capacity = devices[0].capacity();
    let merged_ranges: Vec<_> = metadata_ranges
        .iter()
        .enumerate()
        .flat_map(|(s, ranges)| {
            let base = s * shard_capacity;
            ranges.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let rep = checker.report();
    if !rep.is_clean() {
        return Err(format!("merged-trace analyzer violation: {rep}"));
    }

    // Blocks of the crashed round are judged by the per-window check;
    // a block whose in-flight value equals its durable value cannot
    // witness either outcome and is skipped.
    let staged: HashMap<u64, u8> = in_flight.iter().flatten().copied().collect();
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in durable {
        if staged.contains_key(&b) {
            continue;
        }
        pool.read(b, &mut buf)
            .map_err(|e| format!("read {b}: {e}"))?;
        if buf != fill(v) {
            return Err(format!(
                "durable block {b}: expected fill {v:#x}, read {:#x}",
                buf[0]
            ));
        }
    }
    for (w, spec) in in_flight.iter().enumerate() {
        let mut news: Vec<u64> = Vec::new();
        let mut olds: Vec<u64> = Vec::new();
        for &(b, v) in spec {
            let old = durable.get(&b).copied().unwrap_or(0);
            if old == v {
                continue;
            }
            pool.read(b, &mut buf)
                .map_err(|e| format!("read {b}: {e}"))?;
            if buf == fill(v) {
                news.push(b);
            } else if buf == fill(old) {
                olds.push(b);
            } else {
                return Err(format!("window {w} block {b} is torn: read {:#x}", buf[0]));
            }
        }
        if !news.is_empty() && !olds.is_empty() {
            return Err(format!(
                "window {w} not atomic: blocks {news:?} read new, {olds:?} read old"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Random-trip fuzz
// ---------------------------------------------------------------------------

/// The multi-writer crash application: a seeded [`mw_script`] plan with a
/// random trip armed on one shard's device, recovered and verified via
/// the shared [`RecoverableApp`] protocol.
struct MwPoolApp {
    pool: TincaPool,
    devices: Vec<Nvm>,
    disk: Disk,
    pool_cfg: PoolConfig,
    metadata_ranges: Vec<Vec<std::ops::Range<usize>>>,
    plan: Vec<MwRound>,
    durable: HashMap<u64, u8>,
    rounds_done: usize,
    trip_shard: usize,
    trip: u64,
    seed: u64,
    _seed_span: telemetry::Span,
}

impl MwPoolApp {
    fn new(shards: usize, seed: u64, rounds: usize) -> MwPoolApp {
        quiet_crash_panics();
        let mut rng = StdRng::seed_from_u64(seed);
        let (devices, disk, pool_cfg) = build_mw_pool(shards);
        let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
        let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
        let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();
        let plan = mw_script(&mut rng, rounds, 96, shards as u64);
        let trip_shard = (seed % shards as u64) as usize;
        let trip = rng.gen_range(1..4_000u64);
        devices[trip_shard].set_trip(Some(trip));
        MwPoolApp {
            pool,
            devices,
            disk,
            pool_cfg,
            metadata_ranges,
            plan,
            durable: HashMap::new(),
            rounds_done: 0,
            trip_shard,
            trip,
            seed,
            _seed_span,
        }
    }
}

impl RecoverableApp for MwPoolApp {
    fn run_to_trip(&mut self) -> bool {
        let (done, crashed) = run_mw_plan(&self.pool, &self.plan);
        self.devices[self.trip_shard].set_trip(None);
        self.rounds_done = done;
        for round in &self.plan[..done] {
            for spec in round.specs() {
                for &(b, v) in spec {
                    self.durable.insert(b, v);
                }
            }
        }
        crashed
    }

    fn crash_recover(&mut self) -> Result<(), String> {
        for (s, d) in self.devices.iter().enumerate() {
            d.crash(CrashPolicy::Random(self.seed ^ 0x3757 ^ (s as u64) << 17));
        }
        match TincaPool::recover(
            self.devices.clone(),
            self.disk.clone(),
            self.pool_cfg.clone(),
        ) {
            Ok(p) => {
                self.pool = p;
                Ok(())
            }
            Err(e) => {
                let (seed, trip, trip_shard) = (self.seed, self.trip, self.trip_shard);
                Err(format!(
                    "seed {seed} trip {trip}@shard{trip_shard}: recovery failed: {e}"
                ))
            }
        }
    }

    fn verify(&mut self) -> Result<(), String> {
        verify_mw(
            &self.pool,
            &self.devices,
            &self.metadata_ranges,
            &self.durable,
            self.plan[self.rounds_done].specs(),
        )
        .map_err(|e| {
            let (seed, trip, trip_shard) = (self.seed, self.trip, self.trip_shard);
            format!("seed {seed} trip {trip}@shard{trip_shard}: {e}")
        })
    }
}

/// Runs one seeded multi-writer crash-fuzz iteration.
pub fn mw_pool_fuzz_one(shards: usize, seed: u64, rounds: usize) -> PoolFuzzOutcome {
    run_recoverable(&mut MwPoolApp::new(shards, seed, rounds)).into()
}

/// Runs a multi-writer crash-fuzz campaign of `runs` seeds.
pub fn mw_pool_fuzz_campaign(
    shards: usize,
    base_seed: u64,
    runs: u64,
    rounds: usize,
) -> PoolFuzzReport {
    let r = campaign(runs, false, |i| {
        run_recoverable(&mut MwPoolApp::new(shards, base_seed + i, rounds))
    });
    PoolFuzzReport {
        runs: r.runs,
        completed: r.completed,
        crashes: r.crashes,
        violations: r.violations,
    }
}

// ---------------------------------------------------------------------------
// Frontier enumeration
// ---------------------------------------------------------------------------

/// Enumerates crash frontiers for the multi-writer workload. A probe run
/// harvests every device's fence epochs; each epoch is then replayed to
/// its last staged `clflush` and crashed at every enumerated persist
/// frontier. Because writers stage and publish **without fencing** (only
/// the sequencer fences), a whole round's window payloads *and* `STAGED`
/// descriptor publications share one fence epoch — the frontier subsets
/// therefore cover every combination of published/unpublished/torn
/// descriptors, i.e. every concurrent publication order a real
/// multi-writer race could persist.
pub fn mw_frontier_campaign(
    shards: usize,
    seed: u64,
    rounds: usize,
    cap_per_epoch: usize,
) -> FrontierReport {
    quiet_crash_panics();
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    let plan = {
        let mut rng = StdRng::seed_from_u64(seed);
        mw_script(&mut rng, rounds, 96, shards as u64)
    };

    // Probe: full run, no trip, harvest every device's epochs.
    let (epochs_per_dev, starts): (Vec<Vec<FenceEpoch>>, Vec<u64>) = {
        let (devices, disk, pool_cfg) = build_mw_pool(shards);
        let pool = TincaPool::format(devices.clone(), disk, pool_cfg);
        let starts: Vec<u64> = devices.iter().map(|d| d.events()).collect();
        let (done, crashed) = run_mw_plan(&pool, &plan);
        drop(pool);
        if crashed || done != plan.len() {
            report
                .violations
                .push("probe run crashed with no trip armed".into());
            return report;
        }
        let epochs = devices
            .iter()
            .map(|d| epochs_from_trace(&d.take_trace()))
            .collect();
        (epochs, starts)
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &epochs_per_dev,
        &starts,
        Some("shard"),
        |s, rel_trip, keep| run_mw_state(shards, &plan, s, rel_trip, keep),
    )
}

/// One multi-writer crash state: replay, trip shard `trip_shard` at
/// `rel_trip`, resolve its open epoch to exactly `keep` (the other shards
/// lose volatile state), recover, verify.
fn run_mw_state(
    shards: usize,
    plan: &[MwRound],
    trip_shard: usize,
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let (devices, disk, pool_cfg) = build_mw_pool(shards);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
    let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();
    devices[trip_shard].set_trip(Some(rel_trip));
    let (done, crashed) = run_mw_plan(&pool, plan);
    devices[trip_shard].set_trip(None);
    drop(pool);

    if !crashed {
        return Err("trip did not fire on replay (stream not deterministic?)".into());
    }
    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    devices[trip_shard].crash_frontier(&keep_set);
    for (s, d) in devices.iter().enumerate() {
        if s != trip_shard {
            d.crash(CrashPolicy::LoseVolatile);
        }
    }
    let pool = TincaPool::recover(devices.clone(), disk, pool_cfg)
        .map_err(|e| format!("recovery failed: {e}"))?;

    let mut durable: HashMap<u64, u8> = HashMap::new();
    for round in &plan[..done] {
        for spec in round.specs() {
            for &(b, v) in spec {
                durable.insert(b, v);
            }
        }
    }
    verify_mw(
        &pool,
        &devices,
        &metadata_ranges,
        &durable,
        plan[done].specs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_rounds_disjoint() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let plan_a = mw_script(&mut a, 30, 96, 4);
        let plan_b = mw_script(&mut b, 30, 96, 4);
        assert_eq!(format!("{plan_a:?}"), format!("{plan_b:?}"));
        let mut saw_multi = false;
        let mut saw_spanning = false;
        for round in &plan_a {
            match round {
                MwRound::Spanning(spec) => {
                    saw_spanning = true;
                    assert_eq!(spec.len(), 4, "spanning rounds touch every shard");
                }
                MwRound::Writers(specs) => {
                    saw_multi |= specs.len() > 1;
                    let mut blocks: Vec<u64> = specs.iter().flatten().map(|(b, _)| *b).collect();
                    let n = blocks.len();
                    blocks.sort_unstable();
                    blocks.dedup();
                    assert_eq!(blocks.len(), n, "round blocks must be disjoint");
                    for spec in specs {
                        let s = spec[0].0 % 4;
                        assert!(spec.iter().all(|(b, _)| b % 4 == s), "single-shard txn");
                    }
                }
            }
        }
        assert!(saw_multi, "plan never exercised concurrent windows");
        assert!(saw_spanning, "plan never exercised the spanning path");
    }

    #[test]
    fn mw_fuzz_outcomes_are_deterministic_per_seed() {
        let a = mw_pool_fuzz_one(2, 21, 20);
        let b = mw_pool_fuzz_one(2, 21, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn mw_frontier_enumeration_covers_publication_states() {
        let report = mw_frontier_campaign(2, 7, 3, 4);
        assert!(report.clean(), "{:?}", report.violations);
        assert!(report.epochs_total > 0, "probe found no workload epochs");
        // Multi-window rounds stage several payloads and descriptor
        // publications inside one fence epoch, so some epochs must have
        // exceeded the tiny cap.
        assert!(report.epochs_capped > 0, "{report}");
    }
}
