//! The file-system oracle: what must / may be visible after a crash.

use std::collections::HashMap;

/// Tracks two logical file-system states:
///
/// * `durable` — as of the last commit that **returned**: must survive any
///   crash;
/// * `staged` — including operations since then: becomes visible only if
///   the in-flight commit's atomic commit point persisted.
///
/// After crash + recovery the observed state must equal one of the two
/// (transaction atomicity), and if no commit was in flight, exactly
/// `durable`.
#[derive(Clone, Debug, Default)]
pub struct FsOracle {
    durable: HashMap<String, Vec<u8>>,
    staged: HashMap<String, Vec<u8>>,
}

impl FsOracle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a file creation (staged).
    pub fn create(&mut self, name: &str) {
        self.staged.insert(name.to_string(), Vec::new());
    }

    /// Records a write at `offset` (staged).
    pub fn write(&mut self, name: &str, offset: u64, data: &[u8]) {
        let f = self
            .staged
            .get_mut(name)
            .expect("oracle: write to unknown file");
        let end = offset as usize + data.len();
        if f.len() < end {
            f.resize(end, 0);
        }
        f[offset as usize..end].copy_from_slice(data);
    }

    /// Records a deletion (staged).
    pub fn delete(&mut self, name: &str) {
        self.staged.remove(name);
    }

    /// A commit returned: the staged state is now durable.
    pub fn committed(&mut self) {
        self.durable = self.staged.clone();
    }

    /// The state that must survive any crash.
    pub fn durable_state(&self) -> &HashMap<String, Vec<u8>> {
        &self.durable
    }

    /// The state that may be visible if the in-flight commit landed.
    pub fn staged_state(&self) -> &HashMap<String, Vec<u8>> {
        &self.staged
    }

    /// True if a crash right now has only one legal outcome.
    pub fn quiescent(&self) -> bool {
        self.durable == self.staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_becomes_durable_on_commit() {
        let mut o = FsOracle::new();
        o.create("a");
        o.write("a", 0, b"hello");
        assert!(o.durable_state().is_empty());
        assert!(!o.quiescent());
        o.committed();
        assert_eq!(o.durable_state()["a"], b"hello");
        assert!(o.quiescent());
    }

    #[test]
    fn writes_extend_and_overwrite() {
        let mut o = FsOracle::new();
        o.create("f");
        o.write("f", 4, b"xy");
        assert_eq!(o.staged_state()["f"], vec![0, 0, 0, 0, b'x', b'y']);
        o.write("f", 0, b"AB");
        assert_eq!(&o.staged_state()["f"][..2], b"AB");
    }

    #[test]
    fn delete_is_staged_until_commit() {
        let mut o = FsOracle::new();
        o.create("f");
        o.committed();
        o.delete("f");
        assert!(o.durable_state().contains_key("f"));
        assert!(!o.staged_state().contains_key("f"));
        o.committed();
        assert!(!o.durable_state().contains_key("f"));
    }
}
