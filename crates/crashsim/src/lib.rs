//! # crashsim — crash injection and recovery verification
//!
//! The paper validates Tinca's recoverability by pulling the power cable
//! and killing the process a handful of times (§5.1). This crate
//! mechanises and strengthens that experiment:
//!
//! * a **trip** can be armed at *any* NVM persistence event (every
//!   `clflush`, `sfence`, or atomic store), simulating a power cut at that
//!   exact instant;
//! * the un-fenced write-back state is resolved adversarially (each dirty
//!   word independently persists or drops, honouring 16-byte atomics);
//! * an **oracle** tracks the file-system state that must be durable
//!   (everything up to the last successful `fsync`) and the state that may
//!   additionally be visible (the in-flight transaction, all-or-nothing);
//! * after recovery, the harness checks the observed state is exactly one
//!   of the two, and that cache + FS internal invariants hold.

//! ```
//! use crashsim::{fuzz_system, FuzzReport};
//! use fssim::stack::System;
//!
//! let report: FuzzReport = fuzz_system(System::Tinca, 7, 3, 30);
//! assert!(report.clean(), "no consistency violations: {:?}", report.violations);
//! ```

mod app;
mod backlog;
mod faultfuzz;
mod frontier;
mod fuzz;
mod harness;
mod mwfuzz;
mod oracle;
mod poolfuzz;

pub use app::{campaign, run_recoverable, AppOutcome, CampaignReport, RecoverableApp};
pub use backlog::{
    backlog_campaign, backlog_one, backlog_one_detailed, BacklogOutcome, BacklogReport,
};
pub use frontier::{
    epochs_from_trace, frontier_enumerate, frontier_fs_campaign, pool_frontier_campaign,
    spanning_frontier_campaign, FenceEpoch, FrontierReport,
};

pub use faultfuzz::{
    fault_fuzz_campaign, fault_fuzz_one, fault_fuzz_one_detailed, FaultFuzzOutcome,
    FaultFuzzReport, FaultRunStats,
};
pub use fuzz::{
    fuzz_one, fuzz_one_mode, fuzz_one_opts, fuzz_system, fuzz_system_mode, fuzz_system_opts,
    FailureMode, FuzzOutcome, FuzzReport,
};
pub use harness::{quiet_crash_panics, CrashHarness, VerifyError};
pub use mwfuzz::{mw_frontier_campaign, mw_pool_fuzz_campaign, mw_pool_fuzz_one};
pub use oracle::FsOracle;
pub use poolfuzz::{pool_fuzz_campaign, pool_fuzz_one, PoolFuzzOutcome, PoolFuzzReport};
