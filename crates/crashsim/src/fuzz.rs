//! Randomised crash fuzzing: a seeded workload, a random crash point, an
//! adversarial write-back resolution, then full verification — repeated.

use fssim::stack::{StackConfig, System};
use fssim::FsSim;
use nvmsim::CrashPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::app::{campaign, run_recoverable, AppOutcome, RecoverableApp};
use crate::{CrashHarness, FsOracle};

/// One fuzz run's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzOutcome {
    /// Workload completed before the trip fired.
    Completed,
    /// Crash injected, recovery verified clean.
    CrashedVerified,
    /// Crash injected and verification failed (a consistency bug!).
    Violation(String),
}

impl From<AppOutcome> for FuzzOutcome {
    fn from(o: AppOutcome) -> FuzzOutcome {
        match o {
            AppOutcome::Completed => FuzzOutcome::Completed,
            AppOutcome::CrashedVerified => FuzzOutcome::CrashedVerified,
            AppOutcome::Violation(v) => FuzzOutcome::Violation(v),
        }
    }
}

/// Aggregate over a fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub runs: u64,
    pub completed: u64,
    pub crashes: u64,
    pub violations: Vec<String>,
}

impl FuzzReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A deterministic scripted workload step. Shared with the crash-frontier
/// enumerator ([`crate::frontier`]), which replays the same scripts.
pub(crate) enum Step {
    Create(String),
    Write {
        name: String,
        offset: u64,
        len: usize,
        fill: u8,
    },
    Delete(String),
    Fsync,
}

pub(crate) fn script(rng: &mut StdRng, steps: usize, max_files: usize) -> Vec<Step> {
    let mut live: Vec<String> = Vec::new();
    let mut out = Vec::with_capacity(steps);
    let mut next_id = 0u32;
    for _ in 0..steps {
        let roll = rng.gen_range(0..100);
        if roll < 20 && live.len() < max_files {
            let name = format!("f{next_id}");
            next_id += 1;
            live.push(name.clone());
            out.push(Step::Create(name));
        } else if roll < 70 && !live.is_empty() {
            let name = live[rng.gen_range(0..live.len())].clone();
            out.push(Step::Write {
                name,
                offset: rng.gen_range(0..16) * 1024,
                len: rng.gen_range(1..8192),
                fill: rng.gen_range(1..=255),
            });
        } else if roll < 80 && live.len() > 1 {
            let i = rng.gen_range(0..live.len());
            let name = live.remove(i);
            out.push(Step::Delete(name));
        } else {
            out.push(Step::Fsync);
        }
    }
    out.push(Step::Fsync);
    out
}

pub(crate) fn apply(fs: &mut FsSim, oracle: &mut FsOracle, step: &Step) {
    match step {
        Step::Create(name) => {
            if fs.create(name).is_ok() {
                oracle.create(name);
            }
        }
        Step::Write {
            name,
            offset,
            len,
            fill,
        } => {
            if let Ok(ino) = fs.open(name) {
                let data = vec![*fill; *len];
                if fs.write(ino, *offset, &data).is_ok() {
                    oracle.write(name, *offset, &data);
                }
            }
        }
        Step::Delete(name) => {
            if fs.delete(name).is_ok() {
                oracle.delete(name);
            }
        }
        Step::Fsync => {
            // A commit error is a clean abort (e.g. the destage variant's
            // tiny cache cannot stage the whole batch): the batch stays
            // uncommitted and a later fsync may retry it.
            if fs.fsync().is_ok() {
                oracle.committed();
            }
        }
    }
}

/// How the simulated failure happens (§5.1 runs both scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureMode {
    /// "Unexpectedly plugging out the power cable": un-fenced write-back
    /// state resolves adversarially.
    PowerPull,
    /// "Suddenly killing Tinca's process": DRAM state is lost but the CPU
    /// caches survive and eventually drain — everything stored reaches
    /// NVM.
    ProcessKill,
}

/// Runs one seeded crash-fuzz iteration against `system`.
///
/// The workload batches through explicit fsyncs only (`txn_block_limit`
/// is raised above the script's reach), so the oracle knows every commit
/// boundary exactly.
pub fn fuzz_one(system: System, seed: u64, steps: usize) -> FuzzOutcome {
    fuzz_one_mode(system, seed, steps, FailureMode::PowerPull)
}

/// [`fuzz_one`] with an explicit failure mode.
pub fn fuzz_one_mode(system: System, seed: u64, steps: usize, mode: FailureMode) -> FuzzOutcome {
    fuzz_one_opts(system, seed, steps, mode, false)
}

/// [`fuzz_one_mode`] with the write-behind pipeline toggle.
///
/// With `destage`, the stack runs the watermark destage daemon and
/// commit-path flush coalescing on a shrunken NVM (160 KB ≈ 34 data
/// blocks), so the script's working set crosses the low watermark and
/// crashes land during background writeback — the campaign then proves
/// that a crash mid-destage never loses an acknowledged commit.
pub fn fuzz_one_opts(
    system: System,
    seed: u64,
    steps: usize,
    mode: FailureMode,
    destage: bool,
) -> FuzzOutcome {
    run_recoverable(&mut FsApp::new(system, seed, steps, mode, destage)).into()
}

/// The FS-level crash application: a scripted file workload over one
/// stack, with the [`FsOracle`] tracking durable/staged state.
struct FsApp {
    harness: CrashHarness,
    oracle: FsOracle,
    plan: Vec<Step>,
    trip: u64,
    mode: FailureMode,
    seed: u64,
    /// Attributes the whole run (workload + recovery + verify) to this
    /// seed's simulated clock; dropped when the app is.
    _seed_span: telemetry::Span,
}

impl FsApp {
    fn new(system: System, seed: u64, steps: usize, mode: FailureMode, destage: bool) -> FsApp {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = StackConfig::tiny(system);
        cfg.txn_block_limit = 100_000; // commits only at explicit fsync
        if destage {
            cfg.destage = true;
            cfg.nvm_bytes = 160 << 10;
        }
        let harness = CrashHarness::new(cfg);
        // Each seed builds a fresh stack with its own simulated clock;
        // point any installed telemetry recorder at it so per-seed spans
        // attribute this run's simulated time (a no-op when telemetry is
        // off).
        telemetry::swap_clock(&harness.stack().clock);
        let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
        let plan = script(&mut rng, steps, 12);
        let trip = rng.gen_range(1..20_000u64);
        FsApp {
            harness,
            oracle: FsOracle::new(),
            plan,
            trip,
            mode,
            seed,
            _seed_span,
        }
    }
}

impl RecoverableApp for FsApp {
    fn run_to_trip(&mut self) -> bool {
        let oracle = &mut self.oracle;
        let plan = &self.plan;
        self.harness.run_with_trip(self.trip, move |fs| {
            for step in plan {
                apply(fs, oracle, step);
            }
        })
    }

    fn crash_recover(&mut self) -> Result<(), String> {
        let policy = match self.mode {
            FailureMode::PowerPull => CrashPolicy::Random(self.seed ^ 0xD1CE),
            FailureMode::ProcessKill => CrashPolicy::PersistAll,
        };
        self.harness.crash_and_remount(policy);
        Ok(())
    }

    fn verify(&mut self) -> Result<(), String> {
        self.harness.verify(&self.oracle).map_err(|e| {
            let (seed, trip, mode) = (self.seed, self.trip, self.mode);
            format!("seed {seed} trip {trip} ({mode:?}): {e}")
        })
    }
}

/// Runs a fuzz campaign of `runs` seeds against `system` (power pulls).
pub fn fuzz_system(system: System, base_seed: u64, runs: u64, steps: usize) -> FuzzReport {
    fuzz_system_mode(system, base_seed, runs, steps, FailureMode::PowerPull)
}

/// [`fuzz_system`] with an explicit failure mode.
pub fn fuzz_system_mode(
    system: System,
    base_seed: u64,
    runs: u64,
    steps: usize,
    mode: FailureMode,
) -> FuzzReport {
    fuzz_system_opts(system, base_seed, runs, steps, mode, false)
}

/// [`fuzz_system_mode`] with the write-behind pipeline toggle (see
/// [`fuzz_one_opts`]).
pub fn fuzz_system_opts(
    system: System,
    base_seed: u64,
    runs: u64,
    steps: usize,
    mode: FailureMode,
    destage: bool,
) -> FuzzReport {
    let r = campaign(runs, true, |i| {
        run_recoverable(&mut FsApp::new(system, base_seed + i, steps, mode, destage))
    });
    FuzzReport {
        runs: r.runs,
        completed: r.completed,
        crashes: r.crashes,
        violations: r.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa = script(&mut a, 50, 8);
        let sb = script(&mut b, 50, 8);
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            match (x, y) {
                (Step::Create(p), Step::Create(q)) => assert_eq!(p, q),
                (Step::Fsync, Step::Fsync) => {}
                (Step::Delete(p), Step::Delete(q)) => assert_eq!(p, q),
                (
                    Step::Write {
                        name: p,
                        offset: o1,
                        len: l1,
                        fill: f1,
                    },
                    Step::Write {
                        name: q,
                        offset: o2,
                        len: l2,
                        fill: f2,
                    },
                ) => {
                    assert_eq!((p, o1, l1, f1), (q, o2, l2, f2));
                }
                _ => panic!("scripts diverged"),
            }
        }
    }
}
