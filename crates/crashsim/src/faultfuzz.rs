//! Combined crash + disk-fault fuzzing.
//!
//! The crash fuzzers ([`crate::fuzz`], [`crate::poolfuzz`]) assume a
//! perfect disk. This campaign drops that assumption: each seeded run
//! wraps the disk in a [`FaultyDisk`] with a randomized [`FaultPlan`]
//! (transient read/write bursts, an occasional permanently bad block
//! range, latency spikes) *and* arms a crash trip on the NVM device, then
//! verifies that the two failure modes composed still lose nothing:
//!
//! * every transaction committed before the crash reads back exactly —
//!   a block whose writeback permanently fails must survive *in NVM*
//!   (quarantined, pinned dirty), not evaporate;
//! * the in-flight transaction is all-or-nothing;
//! * transient faults are absorbed by the cache's bounded retry and never
//!   surface to the committing caller;
//! * the NVM event trace stays persist-order clean (the fault/retry path
//!   must not skip fences);
//! * [`TincaCache::health`] reports `Degraded` exactly when blocks are
//!   quarantined.
//!
//! Fault injection stays enabled through the workload *and* recovery;
//! verification reads run with injection disabled so they observe state
//! rather than perturb it.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use blockdev::{DiskKind, FaultPlan, FaultyDisk, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinca::{Health, TincaCache, TincaConfig};

use crate::quiet_crash_panics;

/// Disk blocks the workload touches.
const WORK_BLOCKS: u64 = 96;

/// One fault-fuzz iteration's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultFuzzOutcome {
    /// The script completed (no crash); faults absorbed or quarantined.
    Completed,
    /// Crash injected; recovery verified clean under the fault plan.
    CrashedVerified,
    /// Verification failed — a durability or consistency bug.
    Violation(String),
}

/// Aggregate over a fault-fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct FaultFuzzReport {
    pub runs: u64,
    pub completed: u64,
    pub crashes: u64,
    /// Runs that ended with at least one quarantined block (degraded mode).
    pub degraded: u64,
    /// Sum of transient faults absorbed by retry across all runs.
    pub transients_absorbed: u64,
    /// Sum of retry attempts across all runs.
    pub io_retries: u64,
    /// Sum of permanent I/O errors across all runs.
    pub permanent_errors: u64,
    pub violations: Vec<String>,
}

impl FaultFuzzReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One scripted step: a transaction of disjoint writes, or a read probe.
enum Op {
    Txn(Vec<(u64, u8)>),
    Read(u64),
}

fn script(rng: &mut StdRng, txns: usize) -> Vec<Op> {
    let mut out = Vec::with_capacity(txns * 2);
    for _ in 0..txns {
        if rng.gen_range(0..4) == 0 {
            out.push(Op::Read(rng.gen_range(0..WORK_BLOCKS)));
        }
        let n = rng.gen_range(1..=4usize);
        let mut spec: Vec<(u64, u8)> = Vec::with_capacity(n);
        while spec.len() < n {
            let b = rng.gen_range(0..WORK_BLOCKS);
            if spec.iter().all(|(x, _)| *x != b) {
                spec.push((b, rng.gen_range(1..=255)));
            }
        }
        out.push(Op::Txn(spec));
    }
    out
}

/// Draws a randomized fault plan from the seed stream. Burst length stays
/// below the cache's default retry budget, so every transient fault is
/// absorbable; roughly one run in three also gets a permanently bad block
/// range.
fn draw_plan(rng: &mut StdRng, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed ^ 0xFA01_7D15)
        .with_transient_reads(rng.gen_range(0..=120))
        .with_transient_writes(rng.gen_range(0..=120))
        .with_burst_len(rng.gen_range(1..=3))
        .with_latency_spikes(rng.gen_range(0..=30), 2_000_000);
    if rng.gen_range(0..3) == 0 {
        let start = rng.gen_range(0..WORK_BLOCKS - 6);
        let len = rng.gen_range(1..=6);
        plan = plan.with_bad_range(start..start + len);
    }
    plan
}

fn fill(v: u8) -> [u8; BLOCK_SIZE] {
    [v; BLOCK_SIZE]
}

/// Per-run fault counters (from [`tinca::CacheStats`], pre-crash).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultRunStats {
    pub io_retries: u64,
    pub transients_absorbed: u64,
    pub permanent_errors: u64,
    pub quarantined: usize,
}

/// Runs one seeded crash+fault iteration.
pub fn fault_fuzz_one(seed: u64, txns: usize) -> FaultFuzzOutcome {
    fault_fuzz_one_detailed(seed, txns).0
}

/// [`fault_fuzz_one`] plus the run's fault counters.
pub fn fault_fuzz_one_detailed(seed: u64, txns: usize) -> (FaultFuzzOutcome, FaultRunStats) {
    quiet_crash_panics();
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = draw_plan(&mut rng, seed);

    let clock = SimClock::new();
    telemetry::swap_clock(&clock);
    let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
    let nvm = NvmDevice::new(
        NvmConfig::new(256 << 10, NvmTech::Pcm).with_tracing(),
        clock.clone(),
    );
    let faulty = FaultyDisk::new(SimDisk::new(DiskKind::Ssd, 1 << 16, clock), plan);
    // Odd seeds run the write-behind pipeline: the 256 KB cache holds ~61
    // data blocks against a 96-block working set, so the destage daemon
    // fires mid-script and the campaign covers crash-during-destage and
    // destage-retry-under-faults schedules alongside the synchronous path.
    let destage = seed % 2 == 1;
    let cfg = TincaConfig {
        ring_bytes: 4096,
        destage,
        coalesce_flushes: destage,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm.clone(), faulty.clone(), cfg.clone());
    let metadata_range = 0..cache.layout().data_off;
    let metadata = vec![metadata_range];

    // The trip range deliberately overshoots the script's event count for
    // part of the seed space, so campaigns cover both mid-run crashes and
    // completed runs (where flush_all and degraded-health checks apply).
    let plan_ops = script(&mut rng, txns);
    let trip = rng.gen_range(1..12_000u64);
    nvm.set_trip(Some(trip));

    // Oracle: block → last committed fill byte. `in_flight` names the
    // transaction the crash interrupted, if any.
    let mut durable: HashMap<u64, u8> = HashMap::new();
    let mut in_flight: Option<Vec<(u64, u8)>> = None;
    let crashed = {
        let durable = &mut durable;
        let in_flight = &mut in_flight;
        let cache = &mut cache;
        let plan_ops = &plan_ops;
        catch_unwind(AssertUnwindSafe(move || {
            for op in plan_ops {
                match op {
                    Op::Read(b) => {
                        let mut buf = [0u8; BLOCK_SIZE];
                        // A read may fail permanently (bad uncached block);
                        // that is allowed — losing *committed* data is not,
                        // and successful reads must agree with the oracle.
                        if cache.read(*b, &mut buf).is_ok() {
                            let want = durable.get(b).copied().unwrap_or(0);
                            assert_eq!(buf, fill(want), "read of block {b} disagrees with oracle");
                        }
                    }
                    Op::Txn(spec) => {
                        *in_flight = Some(spec.clone());
                        let mut t = cache.init_txn();
                        for (b, v) in spec {
                            t.write(*b, &fill(*v));
                        }
                        // A commit error means the transaction aborted
                        // cleanly (e.g. every eviction victim quarantined);
                        // its writes must NOT become durable.
                        if cache.commit(&t).is_ok() {
                            for (b, v) in spec {
                                durable.insert(*b, *v);
                            }
                        }
                        *in_flight = None;
                    }
                }
            }
        }))
        .is_err()
    };
    nvm.set_trip(None);

    // Fault counters live in DRAM, so they are read off the pre-crash
    // cache object (a crash wipes them along with the rest of DRAM).
    let s = cache.stats();
    let run_stats = FaultRunStats {
        io_retries: s.io_retries,
        transients_absorbed: s.transient_errors_absorbed,
        permanent_errors: s.permanent_io_errors,
        quarantined: cache.quarantined_count(),
    };

    if !crashed {
        let outcome = verify_completed(&mut cache, &faulty, &nvm, &metadata, &durable);
        return (outcome, run_stats);
    }

    // Power failure mid-run: un-fenced NVM state resolves adversarially.
    // The pre-crash DRAM state is garbage now; recover from NVM with fault
    // injection still live (recovery must not need the disk).
    drop(cache);
    nvm.crash(CrashPolicy::Random(seed ^ 0xD15C));
    let mut cache = match TincaCache::recover(nvm.clone(), faulty.clone(), cfg) {
        Ok(c) => c,
        Err(e) => {
            let v = FaultFuzzOutcome::Violation(format!(
                "seed {seed} trip {trip}: recovery failed under faults: {e}"
            ));
            return (v, run_stats);
        }
    };

    faulty.set_enabled(false);
    let outcome =
        match verify_recovered(&mut cache, &nvm, &metadata, &durable, in_flight.as_deref()) {
            Ok(()) => FaultFuzzOutcome::CrashedVerified,
            Err(e) => FaultFuzzOutcome::Violation(format!("seed {seed} trip {trip}: {e}")),
        };
    (outcome, run_stats)
}

fn verify_completed(
    cache: &mut TincaCache,
    faulty: &Arc<FaultyDisk>,
    nvm: &nvmsim::Nvm,
    metadata: &[std::ops::Range<usize>],
    durable: &HashMap<u64, u8>,
) -> FaultFuzzOutcome {
    // Health must mirror the quarantine set.
    let q = cache.quarantined_count();
    let health = cache.health();
    let health_ok = match health {
        Health::Healthy => q == 0,
        Health::Degraded { quarantined } => quarantined == q && q > 0,
        Health::ReadOnly => q > 0,
    };
    if !health_ok {
        return FaultFuzzOutcome::Violation(format!(
            "health {health:?} disagrees with quarantined_count {q}"
        ));
    }
    // An orderly flush keeps failing while the bad range persists, but
    // every committed block must still read back — from NVM if pinned.
    let flush = cache.flush_all();
    if flush.is_err() && cache.quarantined_count() == 0 {
        return FaultFuzzOutcome::Violation(format!(
            "flush_all failed ({flush:?}) yet nothing is quarantined"
        ));
    }
    faulty.set_enabled(false);
    if let Err(e) = check_trace_and_blocks(cache, nvm, metadata, durable) {
        return FaultFuzzOutcome::Violation(e);
    }
    FaultFuzzOutcome::Completed
}

fn verify_recovered(
    cache: &mut TincaCache,
    nvm: &nvmsim::Nvm,
    metadata: &[std::ops::Range<usize>],
    durable: &HashMap<u64, u8>,
    in_flight: Option<&[(u64, u8)]>,
) -> Result<(), String> {
    // The crash-interrupted transaction must be all-or-nothing; judge its
    // blocks separately from the strictly-durable set.
    let staged: HashMap<u64, u8> = in_flight
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    let strictly_durable: HashMap<u64, u8> = durable
        .iter()
        .filter(|(b, _)| !staged.contains_key(b))
        .map(|(&b, &v)| (b, v))
        .collect();
    check_trace_and_blocks(cache, nvm, metadata, &strictly_durable)?;

    if let Some(spec) = in_flight {
        let mut news = 0usize;
        let mut olds = 0usize;
        let mut buf = [0u8; BLOCK_SIZE];
        for &(b, v) in spec {
            cache
                .read_nocache(b, &mut buf)
                .map_err(|e| format!("in-flight block {b} unreadable after recovery: {e}"))?;
            let old = durable.get(&b).copied().unwrap_or(0);
            if v == old {
                // The script redrew the block's already-committed value:
                // the readback is consistent with both outcomes and is
                // evidence for neither side of the atomicity check.
                if buf != fill(v) {
                    return Err(format!("in-flight block {b} is torn: read {:#x}", buf[0]));
                }
            } else if buf == fill(v) {
                news += 1;
            } else if buf == fill(old) {
                olds += 1;
            } else {
                return Err(format!("in-flight block {b} is torn: read {:#x}", buf[0]));
            }
        }
        if news != 0 && olds != 0 {
            return Err(format!(
                "in-flight transaction not atomic: {news} new / {olds} old of {}",
                spec.len()
            ));
        }
    }
    Ok(())
}

/// Shared tail of both verification paths: internal invariants, the
/// persist-order trace, and byte-exact readback of every durable block.
fn check_trace_and_blocks(
    cache: &mut TincaCache,
    nvm: &nvmsim::Nvm,
    metadata: &[std::ops::Range<usize>],
    durable: &HashMap<u64, u8>,
) -> Result<(), String> {
    cache
        .check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;
    let mut checker = Checker::new(CheckConfig::with_metadata(metadata.to_vec()));
    checker.push_all(&nvm.take_trace());
    let report = checker.report();
    if !report.is_clean() {
        return Err(format!("persist-order violation under faults: {report}"));
    }
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in durable {
        cache
            .read_nocache(b, &mut buf)
            .map_err(|e| format!("durable block {b} unreadable: {e}"))?;
        if buf != fill(v) {
            return Err(format!(
                "durable block {b}: expected fill {v:#x}, read {:#x}",
                buf[0]
            ));
        }
    }
    Ok(())
}

/// Runs a fault-fuzz campaign of `runs` seeds.
pub fn fault_fuzz_campaign(base_seed: u64, runs: u64, txns: usize) -> FaultFuzzReport {
    let mut report = FaultFuzzReport::default();
    for i in 0..runs {
        report.runs += 1;
        let (outcome, stats) = fault_fuzz_one_detailed(base_seed + i, txns);
        report.io_retries += stats.io_retries;
        report.transients_absorbed += stats.transients_absorbed;
        report.permanent_errors += stats.permanent_errors;
        if stats.quarantined > 0 {
            report.degraded += 1;
        }
        match outcome {
            FaultFuzzOutcome::Completed => report.completed += 1,
            FaultFuzzOutcome::CrashedVerified => report.crashes += 1,
            FaultFuzzOutcome::Violation(v) => {
                report.crashes += 1;
                report.violations.push(v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = draw_plan(&mut rng, seed);
            (
                p.transient_read_per_mille,
                p.transient_write_per_mille,
                p.burst_len,
                p.bad_ranges.clone(),
            )
        };
        assert_eq!(draw(42), draw(42));
    }

    #[test]
    fn small_campaign_is_clean() {
        let report = fault_fuzz_campaign(7, 25, 40);
        assert!(report.clean(), "violations: {:#?}", report.violations);
        assert!(report.crashes + report.completed == report.runs);
    }
}
