//! Crash-mid-backlog campaign: power-pull while an open-loop overload is
//! queued and shedding.
//!
//! [`crate::poolfuzz`] crashes a pool under a closed-loop script. This
//! campaign drives the pool through the open-loop tier
//! ([`workloads::openloop`]) at an offered rate far past capacity, with a
//! bounded per-shard queue, so at the crash instant there is a real
//! serving-tier state to corrupt: a backlog of admitted-but-queued ops
//! and a population of shed (rejected) ops. The property proven per
//! seed:
//!
//! * every *completed* write reads back exactly after recovery;
//! * the op in flight at the crash is all-or-nothing (writes are
//!   shard-aligned, so the whole transaction is one shard fragment);
//! * **no shed or merely-queued op is ever visible** — admission control
//!   rejects before any cache work, so a shed op's payload must not
//!   exist anywhere on the recovered pool (payloads embed the op's
//!   unique sequence number, making the check exact);
//! * every shard's internals and persist-order event trace are clean.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{shard_devices, CrashPolicy, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use tinca::{PoolConfig, TincaConfig, TincaPool};
use workloads::openloop::{
    write_payload, Arrival, ArrivalStream, Arrivals, OpKind, OpenLoopDriver, OpenLoopSpec,
    StepOutcome, TincaServer,
};

use crate::quiet_crash_panics;

/// One crash-mid-backlog iteration's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BacklogOutcome {
    /// The stream drained before the trip fired.
    Completed,
    /// Crash injected mid-backlog; recovery verified clean.
    CrashedVerified,
    /// Verification failed — a consistency bug.
    Violation(String),
}

/// Aggregate over a crash-mid-backlog campaign.
#[derive(Clone, Debug, Default)]
pub struct BacklogReport {
    pub runs: u64,
    pub completed: u64,
    pub crashes: u64,
    /// Ops shed by admission control across all runs (the campaign is
    /// only meaningful if this is non-zero: there must *be* a backlog).
    pub shed: u64,
    pub violations: Vec<String>,
}

impl BacklogReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn overload_spec(shards: usize, seed: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        users: 100_000,
        // ~100× a shard's service capacity: the queue fills within a few
        // arrivals and stays full, so most of the run happens at the
        // admission boundary.
        arrivals: Arrivals::Poisson {
            rate_ops_per_sec: 20_000_000.0,
        },
        ops: 240,
        read_pct: 30,
        blocks: 16 * shards as u64,
        txn_blocks: 2,
        queue_cap: 6,
        limiter: None,
        seed,
    }
}

/// Runs one seeded crash-mid-backlog iteration against an `N`-shard pool.
pub fn backlog_one(shards: usize, seed: u64) -> BacklogOutcome {
    backlog_one_detailed(shards, seed).0
}

/// Like [`backlog_one`], also returning how many ops admission control
/// shed before the crash (or stream end).
pub fn backlog_one_detailed(shards: usize, seed: u64) -> (BacklogOutcome, u64) {
    quiet_crash_panics();
    let spec = overload_spec(shards, seed);

    let nvm_cfg = NvmConfig::new(shards * (512 << 10), NvmTech::Pcm).with_tracing();
    let devices: Vec<Nvm> = shard_devices(&nvm_cfg, shards);
    let disk_clock = SimClock::new();
    telemetry::swap_clock(&disk_clock);
    let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, disk_clock.clone());
    let pool_cfg = PoolConfig {
        shards,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    };
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
    let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();

    // The stream is deterministic, so the oracle can see the whole plan
    // up front and attribute outcomes to ops by step index.
    let plan: Vec<Arrival> = ArrivalStream::new(&spec, shards).collect();
    let trip_shard = (seed % shards as u64) as usize;
    let trip = 1 + (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 3_000);
    devices[trip_shard].set_trip(Some(trip));

    let mut driver = OpenLoopDriver::new(spec, TincaServer::new(&pool, disk_clock));
    // blk → seq of the last *completed* write; shed write seqs must never
    // surface.
    let mut completed_seq: HashMap<u64, u64> = HashMap::new();
    let mut shed_seqs: Vec<u64> = Vec::new();
    let mut steps = 0usize;
    let crashed = {
        let driver = &mut driver;
        let completed_seq = &mut completed_seq;
        let shed_seqs = &mut shed_seqs;
        let steps = &mut steps;
        let plan = &plan;
        catch_unwind(AssertUnwindSafe(move || {
            while let Some(outcome) = driver.step() {
                let kind = &plan[*steps].kind;
                *steps += 1;
                match outcome {
                    StepOutcome::Completed { .. } => {
                        if let OpKind::Write { blks, seq } = kind {
                            for &b in blks {
                                completed_seq.insert(b, *seq);
                            }
                        }
                    }
                    StepOutcome::ShedQueueFull { .. } | StepOutcome::ShedThrottled { .. } => {
                        if let OpKind::Write { seq, .. } = kind {
                            shed_seqs.push(*seq);
                        }
                    }
                }
            }
        }))
        .is_err()
    };
    devices[trip_shard].set_trip(None);
    let in_flight = driver.current.clone();
    let shed_count = shed_seqs.len() as u64;
    if !crashed {
        return (BacklogOutcome::Completed, shed_count);
    }

    // Power failure on every shard; un-fenced state resolves adversarially.
    for (s, d) in devices.iter().enumerate() {
        d.crash(CrashPolicy::Random(seed ^ 0xBAC1 ^ ((s as u64) << 13)));
    }
    let pool = match TincaPool::recover(devices.clone(), disk, pool_cfg) {
        Ok(p) => p,
        Err(e) => {
            return (
                BacklogOutcome::Violation(format!(
                    "seed {seed} trip {trip}@shard{trip_shard}: recovery failed: {e}"
                )),
                shed_count,
            );
        }
    };

    let outcome = match verify(
        &pool,
        &devices,
        &metadata_ranges,
        &completed_seq,
        in_flight.as_ref(),
        16 * shards as u64,
    ) {
        Ok(()) => BacklogOutcome::CrashedVerified,
        Err(e) => {
            BacklogOutcome::Violation(format!("seed {seed} trip {trip}@shard{trip_shard}: {e}"))
        }
    };
    (outcome, shed_count)
}

/// Checks the recovered pool against the oracle: every block must hold
/// exactly its last completed write's payload (or zeros if never
/// written), except the in-flight write's blocks, which must be
/// all-or-nothing. Because payloads embed each op's unique `seq`, this
/// exact-match sweep also proves no shed or queued op left any trace.
fn verify(
    pool: &TincaPool,
    devices: &[Nvm],
    metadata_ranges: &[Vec<std::ops::Range<usize>>],
    completed_seq: &HashMap<u64, u64>,
    in_flight: Option<&Arrival>,
    blocks: u64,
) -> Result<(), String> {
    pool.check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;

    for (s, d) in devices.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(&d.take_trace());
        let report = checker.report();
        if !report.is_clean() {
            return Err(format!("shard {s} persist-order violation: {report}"));
        }
    }

    let expected = |b: u64, seq: Option<u64>| -> [u8; BLOCK_SIZE] {
        match seq {
            Some(s) => write_payload(b, s),
            None => [0u8; BLOCK_SIZE],
        }
    };
    let in_flight_write: Option<(&[u64], u64)> = match in_flight.map(|a| &a.kind) {
        Some(OpKind::Write { blks, seq }) => Some((blks.as_slice(), *seq)),
        _ => None,
    };

    let mut buf = [0u8; BLOCK_SIZE];
    let mut news = 0usize;
    let mut olds = 0usize;
    for b in 0..blocks {
        pool.read_nocache(b, &mut buf)
            .map_err(|e| format!("read {b}: {e}"))?;
        let old = expected(b, completed_seq.get(&b).copied());
        if let Some((blks, seq)) = in_flight_write {
            if blks.contains(&b) {
                if buf == write_payload(b, seq) {
                    news += 1;
                } else if buf == old {
                    olds += 1;
                } else {
                    return Err(format!("in-flight block {b} is torn"));
                }
                continue;
            }
        }
        if buf != old {
            return Err(format!(
                "block {b}: not the last completed write (seq {:?}) — a queued or shed op leaked?",
                completed_seq.get(&b)
            ));
        }
    }
    if news != 0 && olds != 0 {
        return Err(format!(
            "in-flight write not atomic: {news} new / {olds} old blocks"
        ));
    }
    Ok(())
}

/// Runs a crash-mid-backlog campaign of `runs` seeds.
pub fn backlog_campaign(shards: usize, base_seed: u64, runs: u64) -> BacklogReport {
    let mut report = BacklogReport::default();
    for i in 0..runs {
        report.runs += 1;
        let (outcome, shed) = backlog_one_detailed(shards, base_seed + i);
        report.shed += shed;
        match outcome {
            BacklogOutcome::Completed => report.completed += 1,
            BacklogOutcome::CrashedVerified => report.crashes += 1,
            BacklogOutcome::Violation(v) => {
                report.crashes += 1;
                report.violations.push(v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_spec_actually_sheds() {
        // Without a crash (trip unarmed path: run the driver directly),
        // the overload spec must build a backlog and shed — otherwise
        // the campaign proves nothing.
        let shards = 2;
        let spec = overload_spec(shards, 7);
        let devices = shard_devices(&NvmConfig::new(shards * (512 << 10), NvmTech::Pcm), shards);
        let clock = SimClock::new();
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
        let pool = TincaPool::format(
            devices,
            disk,
            PoolConfig {
                shards,
                cache: TincaConfig {
                    ring_bytes: 4096,
                    ..TincaConfig::default()
                },
                ..PoolConfig::default()
            },
        );
        let r = OpenLoopDriver::new(spec, TincaServer::new(&pool, clock)).run();
        assert!(r.shed_queue_full > 0, "no backlog formed");
        assert!(r.completed > 0);
    }

    #[test]
    fn single_seed_verifies() {
        let out = backlog_one(2, 3);
        assert!(
            matches!(
                out,
                BacklogOutcome::Completed | BacklogOutcome::CrashedVerified
            ),
            "{out:?}"
        );
    }
}
