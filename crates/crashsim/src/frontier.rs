//! Bounded exhaustive crash-state enumeration.
//!
//! The random trip sweep ([`crate::fuzz`], [`crate::poolfuzz`]) samples one
//! crash instant and one write-back resolution per seed. This module
//! *enumerates* instead: a probe run records the full event trace of a
//! scripted workload, every fence epoch (the staged lines between two
//! consecutive `sfence`s) is extracted, and for each epoch every reachable
//! **persist frontier** — every subset of the epoch's staged lines — is
//! materialised with [`nvmsim::NvmDevice::crash_frontier`], recovered, and
//! verified against the oracle. For small scripts this subsumes the random
//! sweep: any crash state `CrashPolicy::Random` can produce at line
//! granularity is one of the enumerated frontiers.
//!
//! Epochs with more than `log2(cap_per_epoch)` staged lines are sampled
//! instead of enumerated (the empty and full frontiers are always
//! included); the report counts those epochs so a capped run is never
//! mistaken for an exhaustive one.
//!
//! Three campaigns are provided:
//!
//! * [`frontier_fs_campaign`] — the single-threaded FS stack, replaying
//!   the same scripts as [`crate::fuzz`];
//! * [`pool_frontier_campaign`] — a genuinely multi-threaded pool
//!   workload: one OS thread per shard (blocks ≡ thread mod shards keep
//!   every shard single-writer and its event stream deterministic), the
//!   spawn handoff annotated with release/acquire sync events so the
//!   persistrace rules audit each shard's trace without false positives;
//! * [`spanning_frontier_campaign`] — a single-threaded stream of
//!   transactions that each touch **every** shard, so each commit runs
//!   the pool's two-phase spanning protocol. Epochs are enumerated on
//!   every device in turn, which lands crashes inside the intent publish,
//!   between fragment prepares, around the resolve store, and during
//!   window retirement; recovery must make each transaction
//!   all-or-nothing across all shards at every frontier.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{Disk, DiskKind, SimDisk, BLOCK_SIZE};
use fssim::stack::{StackConfig, System};
use nvmsim::{
    merge_shard_traces, shard_devices, CrashPolicy, CrashTripped, Nvm, NvmConfig, NvmTech, SimClock,
};
use nvmsim::{TraceEvent, TracedOp};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinca::{PoolConfig, TincaConfig, TincaPool};

use crate::fuzz::{apply, script};
use crate::{quiet_crash_panics, CrashHarness, FsOracle};

/// Aggregate over a frontier-enumeration campaign.
#[derive(Clone, Debug, Default)]
pub struct FrontierReport {
    /// Per-epoch crash-state budget the campaign ran with.
    pub cap_per_epoch: usize,
    /// Fence epochs found in the workload window of the probe trace.
    pub epochs_total: u64,
    /// Epochs whose frontier set was enumerated exhaustively (2^k ≤ cap).
    pub epochs_exhaustive: u64,
    /// Epochs that exceeded the cap and were deterministically sampled
    /// (empty + full frontiers always included).
    pub epochs_capped: u64,
    /// Epochs before the workload window (stack format/mount) — skipped.
    pub epochs_skipped_setup: u64,
    /// Crash states materialised, recovered, and verified.
    pub states_run: u64,
    pub violations: Vec<String>,
}

impl FrontierReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for FrontierReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} epochs ({} exhaustive, {} capped at {} states), {} crash states, {} violations",
            self.epochs_total,
            self.epochs_exhaustive,
            self.epochs_capped,
            self.cap_per_epoch,
            self.states_run,
            self.violations.len()
        )
    }
}

/// One fence epoch reconstructed from a probe trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FenceEpoch {
    /// Staged lines, in first-staging order, deduplicated.
    pub staged: Vec<usize>,
    /// Absolute persistence-event ordinal of the epoch's **last staged
    /// clflush**. Tripping there crashes with the whole epoch staged but
    /// not yet fenced (events fire after the instruction takes effect, so
    /// tripping at the `sfence` itself would be one event too late).
    pub trip_event: u64,
}

/// Walks a trace and reconstructs every fence epoch that staged at least
/// one line, mirroring the device's persistence-event counter: each
/// `clflush` *line*, each `sfence`, and each atomic store bumps it; plain
/// stores and sync annotations do not.
pub fn epochs_from_trace(ops: &[TracedOp]) -> Vec<FenceEpoch> {
    let mut out = Vec::new();
    let mut event = 0u64;
    let mut staged: Vec<usize> = Vec::new();
    let mut last_staged_event = 0u64;
    for op in ops {
        match op.event {
            TraceEvent::Clflush { line, staged: s } => {
                event += 1;
                if s {
                    if !staged.contains(&line) {
                        staged.push(line);
                    }
                    last_staged_event = event;
                }
            }
            TraceEvent::Sfence { .. } => {
                event += 1;
                if !staged.is_empty() {
                    out.push(FenceEpoch {
                        staged: std::mem::take(&mut staged),
                        trip_event: last_staged_event,
                    });
                }
            }
            TraceEvent::AtomicStore { .. } => event += 1,
            TraceEvent::Crash => staged.clear(),
            _ => {}
        }
    }
    out
}

/// The frontiers to run for one epoch: all `2^k` line subsets when that
/// fits the cap, else a deterministic sample (always containing the empty
/// and full frontiers). Returns `(frontiers, capped)`.
fn frontiers(staged: &[usize], cap: usize, seed: u64) -> (Vec<Vec<usize>>, bool) {
    let k = staged.len();
    let cap = cap.max(2);
    if k < usize::BITS as usize - 1 && (1usize << k) <= cap {
        let all = (0..1u64 << k)
            .map(|mask| {
                staged
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &l)| l)
                    .collect()
            })
            .collect();
        return (all, false);
    }
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut sorted_full: Vec<usize> = staged.to_vec();
    sorted_full.sort_unstable();
    seen.insert(Vec::new());
    seen.insert(sorted_full);
    let mut rng = StdRng::seed_from_u64(seed);
    // Bounded attempts: duplicates are discarded, and an epoch this large
    // always has far more than `cap` distinct subsets.
    for _ in 0..cap * 16 {
        if seen.len() >= cap {
            break;
        }
        let mut s: Vec<usize> = staged.iter().copied().filter(|_| rng.gen()).collect();
        s.sort_unstable();
        seen.insert(s);
    }
    (seen.into_iter().collect(), true)
}

/// The shared frontier-enumeration loop: for each device's probe-harvested
/// fence epochs, skips setup epochs, enumerates (or samples) each epoch's
/// frontiers, and calls `run_state(device, rel_trip, keep)` once per crash
/// state — which must replay the workload to `rel_trip` events past the
/// device's start, crash at exactly `keep`, recover, and verify.
///
/// `site` labels the device index in violation strings (`Some("shard")` →
/// `"seed S shard D epoch I …"`; `None` omits it, for single-device
/// campaigns). All three built-in campaigns and the kvdb frontier
/// campaigns run through this loop.
pub fn frontier_enumerate<F>(
    seed: u64,
    cap_per_epoch: usize,
    epochs_per_dev: &[Vec<FenceEpoch>],
    starts: &[u64],
    site: Option<&str>,
    mut run_state: F,
) -> FrontierReport
where
    F: FnMut(usize, u64, &[usize]) -> Result<(), String>,
{
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    for (s, epochs) in epochs_per_dev.iter().enumerate() {
        for (i, ep) in epochs.iter().enumerate() {
            if ep.trip_event <= starts[s] {
                report.epochs_skipped_setup += 1;
                continue;
            }
            report.epochs_total += 1;
            let sub_seed = seed ^ ((s as u64) << 48) ^ ((i as u64) << 32);
            let (keeps, capped) = frontiers(&ep.staged, cap_per_epoch, sub_seed);
            if capped {
                report.epochs_capped += 1;
                telemetry::count("frontier.epochs.capped", 1);
            } else {
                report.epochs_exhaustive += 1;
            }
            for keep in keeps {
                report.states_run += 1;
                telemetry::count("frontier.states", 1);
                if let Err(e) = run_state(s, ep.trip_event - starts[s], &keep) {
                    let at = match site {
                        Some(site) => format!("{site} {s} epoch {i}"),
                        None => format!("epoch {i}"),
                    };
                    report.violations.push(format!(
                        "seed {seed} {at} trip {} keep {keep:?}: {e}",
                        ep.trip_event
                    ));
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// FS campaign (single-threaded stack, same scripts as the random fuzzer)
// ---------------------------------------------------------------------------

/// Enumerates crash frontiers for one seeded FS script against `system`.
///
/// A probe run traces the complete workload once; every fence epoch in the
/// workload window is then re-run to its last staged `clflush`, crashed at
/// each enumerated frontier, recovered, and verified against the oracle
/// (all-or-nothing visibility plus persist-order cleanliness).
pub fn frontier_fs_campaign(
    system: System,
    seed: u64,
    steps: usize,
    cap_per_epoch: usize,
) -> FrontierReport {
    quiet_crash_panics();
    let mut cfg = StackConfig::tiny(system);
    cfg.txn_block_limit = 100_000; // commits only at explicit fsync
    let plan = {
        let mut rng = StdRng::seed_from_u64(seed);
        script(&mut rng, steps, 12)
    };

    // Probe: run the whole script once, untripped, and harvest the epochs.
    let (epochs, start_events) = {
        let mut probe = CrashHarness::new(cfg.clone());
        telemetry::swap_clock(&probe.stack().clock);
        let start = probe.events();
        let mut oracle = FsOracle::new();
        probe.run(|fs| {
            for step in &plan {
                apply(fs, &mut oracle, step);
            }
        });
        (epochs_from_trace(&probe.stack().nvm.take_trace()), start)
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &[epochs],
        &[start_events],
        None,
        |_, rel_trip, keep| run_fs_state(&cfg, &plan, rel_trip, keep),
    )
}

/// One crash state: replay to the epoch's trip, crash at exactly `keep`,
/// remount, verify.
fn run_fs_state(
    cfg: &StackConfig,
    plan: &[crate::fuzz::Step],
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let mut harness = CrashHarness::new(cfg.clone());
    telemetry::swap_clock(&harness.stack().clock);
    let mut oracle = FsOracle::new();
    let crashed = {
        let oracle = &mut oracle;
        harness.run_with_trip(rel_trip, move |fs| {
            for step in plan {
                apply(fs, oracle, step);
            }
        })
    };
    if !crashed {
        return Err("trip did not fire on replay (workload not deterministic?)".into());
    }
    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    harness.crash_frontier_and_remount(&keep_set);
    harness.verify(&oracle).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Pool campaign (one OS thread per shard)
// ---------------------------------------------------------------------------

/// One scripted transaction: disjoint (block, fill) writes on one shard.
type TxnSpec = Vec<(u64, u8)>;

/// Worker trace-thread ids start here, far above any lazily assigned id.
const WORKER_TRACE_BASE: u32 = 1000;
/// Sync-object id for the spawn handoff of shard `s` is `HANDOFF_OBJ + s`.
const HANDOFF_OBJ: u64 = 0x5F00;

fn fill(v: u8) -> [u8; BLOCK_SIZE] {
    [v; BLOCK_SIZE]
}

/// Per-thread script: thread `t` of `shards` only touches blocks
/// ≡ `t` (mod `shards`), so each shard has exactly one writer and its
/// device event stream is deterministic under any thread interleaving.
fn thread_script(
    rng: &mut StdRng,
    txns: usize,
    blocks: u64,
    shards: u64,
    thread: u64,
) -> Vec<TxnSpec> {
    (0..txns)
        .map(|_| {
            let n = rng.gen_range(1..=2usize);
            let mut spec: TxnSpec = Vec::with_capacity(n);
            while spec.len() < n {
                let b = rng.gen_range(0..blocks / shards) * shards + thread;
                if spec.iter().all(|(x, _)| *x != b) {
                    spec.push((b, rng.gen_range(1..=255)));
                }
            }
            spec
        })
        .collect()
}

fn build_pool(shards: usize) -> (Vec<Nvm>, Disk, PoolConfig) {
    let nvm_cfg = NvmConfig::new(shards * (256 << 10), NvmTech::Pcm).with_tracing();
    let devices = shard_devices(&nvm_cfg, shards);
    let clock = SimClock::new();
    telemetry::swap_clock(&clock);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let pool_cfg = PoolConfig {
        shards,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    };
    (devices, disk, pool_cfg)
}

/// Runs one OS thread per plan against the shared pool. Thread `i` owns
/// shard `i`. Returns per-thread `(committed, crashed)`; any panic other
/// than the armed [`CrashTripped`] propagates.
fn run_pool_threads(
    pool: &TincaPool,
    devices: &[Nvm],
    plans: &[Vec<TxnSpec>],
) -> Vec<(usize, bool)> {
    // Annotate the spawn handoff: the spawning thread releases, each
    // worker acquires, giving the race rules the happens-before edge the
    // real `thread::scope` spawn provides.
    for (s, d) in devices.iter().enumerate() {
        d.note_atomic_store_release(HANDOFF_OBJ + s as u64);
    }
    std::thread::scope(|sc| {
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let device = &devices[i];
                sc.spawn(move || {
                    nvmsim::set_trace_thread(WORKER_TRACE_BASE + i as u32);
                    device.note_atomic_load_acquire(HANDOFF_OBJ + i as u64);
                    let mut committed = 0usize;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        for spec in plan {
                            let mut t = pool.init_txn();
                            for (b, v) in spec {
                                t.write(*b, &fill(*v));
                            }
                            pool.commit(t).expect("frontier commit");
                            committed += 1;
                        }
                    }));
                    let crashed = match outcome {
                        Ok(()) => false,
                        Err(p) if p.downcast_ref::<CrashTripped>().is_some() => true,
                        Err(p) => std::panic::resume_unwind(p),
                    };
                    (committed, crashed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("frontier worker"))
            .collect()
    })
}

/// Enumerates crash frontiers for a multi-threaded pool workload: one OS
/// thread per shard commits its own transaction stream; each shard's
/// fence epochs are enumerated in turn, the crash landing mid-commit on
/// that shard while the other threads run to completion.
pub fn pool_frontier_campaign(
    shards: usize,
    seed: u64,
    txns_per_thread: usize,
    cap_per_epoch: usize,
) -> FrontierReport {
    quiet_crash_panics();
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    let blocks = 96u64;
    let plans: Vec<Vec<TxnSpec>> = (0..shards)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) << 8));
            thread_script(&mut rng, txns_per_thread, blocks, shards as u64, t as u64)
        })
        .collect();

    // Probe: full run, no trip. Each shard is single-writer, so its event
    // stream (and thus each epoch's trip ordinal) is replay-stable.
    let (epochs_per_shard, starts) = {
        let (devices, disk, pool_cfg) = build_pool(shards);
        let pool = TincaPool::format(devices.clone(), disk, pool_cfg);
        let starts: Vec<u64> = devices.iter().map(|d| d.events()).collect();
        let results = run_pool_threads(&pool, &devices, &plans);
        drop(pool);
        if let Some((t, _)) = results.iter().enumerate().find(|(_, (_, c))| *c) {
            report.violations.push(format!(
                "probe run crashed on thread {t} with no trip armed"
            ));
            return report;
        }
        let epochs: Vec<Vec<FenceEpoch>> = devices
            .iter()
            .map(|d| epochs_from_trace(&d.take_trace()))
            .collect();
        (epochs, starts)
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &epochs_per_shard,
        &starts,
        Some("shard"),
        |s, rel_trip, keep| run_pool_state(shards, &plans, s, rel_trip, keep),
    )
}

/// One pool crash state: replay, trip shard `trip_shard` at `rel_trip`,
/// resolve its open epoch to exactly `keep` (other shards lose volatile
/// state), recover, verify.
fn run_pool_state(
    shards: usize,
    plans: &[Vec<TxnSpec>],
    trip_shard: usize,
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let (devices, disk, pool_cfg) = build_pool(shards);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
    let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();
    devices[trip_shard].set_trip(Some(rel_trip));
    let results = run_pool_threads(&pool, &devices, plans);
    devices[trip_shard].set_trip(None);
    drop(pool);

    if !results[trip_shard].1 {
        return Err("trip did not fire on replay (shard stream not deterministic?)".into());
    }
    if let Some((t, _)) = results
        .iter()
        .enumerate()
        .find(|(t, (_, c))| *c && *t != trip_shard)
    {
        return Err(format!(
            "thread {t} crashed but the trip was on shard {trip_shard}"
        ));
    }

    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    devices[trip_shard].crash_frontier(&keep_set);
    for (s, d) in devices.iter().enumerate() {
        if s != trip_shard {
            d.crash(CrashPolicy::LoseVolatile);
        }
    }
    let pool = TincaPool::recover(devices.clone(), disk, pool_cfg)
        .map_err(|e| format!("recovery failed: {e}"))?;
    verify_pool(&pool, &devices, &metadata_ranges, plans, &results)
}

fn verify_pool(
    pool: &TincaPool,
    devices: &[Nvm],
    metadata_ranges: &[Vec<std::ops::Range<usize>>],
    plans: &[Vec<TxnSpec>],
    results: &[(usize, bool)],
) -> Result<(), String> {
    // 1. Internal invariants of every shard.
    pool.check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;

    // 2. Every shard's full multi-thread trace passes the analyzer —
    //    including the concurrency rules (persist-race, unordered-commit,
    //    cross-thread-flush-dependency).
    for (s, d) in devices.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(&d.take_trace());
        let rep = checker.report();
        if !rep.is_clean() {
            return Err(format!("shard {s} analyzer violation: {rep}"));
        }
    }

    // 3. Committed transactions are durable; the tripped thread's
    //    in-flight transaction (single-shard by construction) is
    //    all-or-nothing.
    let mut durable: HashMap<u64, u8> = HashMap::new();
    let mut in_flight: Option<&TxnSpec> = None;
    for (t, plan) in plans.iter().enumerate() {
        let (committed, crashed) = results[t];
        for spec in &plan[..committed] {
            for &(b, v) in spec {
                durable.insert(b, v);
            }
        }
        if crashed && committed < plan.len() {
            in_flight = Some(&plan[committed]);
        }
    }
    let staged: HashMap<u64, u8> = in_flight
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in &durable {
        if staged.contains_key(&b) {
            continue; // judged by the all-or-nothing check below
        }
        pool.read(b, &mut buf)
            .map_err(|e| format!("read {b}: {e}"))?;
        if buf != fill(v) {
            return Err(format!(
                "durable block {b}: expected fill {v:#x}, read {:#x}",
                buf[0]
            ));
        }
    }
    if let Some(spec) = in_flight {
        let mut news = 0usize;
        let mut olds = 0usize;
        for &(b, v) in spec {
            pool.read(b, &mut buf)
                .map_err(|e| format!("read {b}: {e}"))?;
            if buf == fill(v) {
                news += 1;
            } else if buf == fill(durable.get(&b).copied().unwrap_or(0)) {
                olds += 1;
            } else {
                return Err(format!("in-flight block {b} is torn: read {:#x}", buf[0]));
            }
        }
        if news != 0 && olds != 0 {
            return Err(format!(
                "in-flight txn not atomic: {news} new / {olds} old of {}",
                spec.len()
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Spanning campaign (single-threaded, every transaction crosses all shards)
// ---------------------------------------------------------------------------

/// Spanning script: every transaction writes one block on **each** shard
/// (`base * shards + s`), so every commit exercises the pool's two-phase
/// spanning protocol — intent publish, one prepared fragment per shard,
/// resolve, and window retirement.
fn spanning_script(rng: &mut StdRng, txns: usize, bases: u64, shards: u64) -> Vec<TxnSpec> {
    (0..txns)
        .map(|_| {
            let base = rng.gen_range(0..bases);
            (0..shards)
                .map(|s| (base * shards + s, rng.gen_range(1..=255)))
                .collect()
        })
        .collect()
}

/// Commits `plan` on the calling thread; returns `(committed, crashed)`.
/// Any panic other than the armed [`CrashTripped`] propagates.
fn run_spanning_script(pool: &TincaPool, plan: &[TxnSpec]) -> (usize, bool) {
    let mut committed = 0usize;
    let outcome = {
        let committed = &mut committed;
        catch_unwind(AssertUnwindSafe(move || {
            for spec in plan {
                let mut t = pool.init_txn();
                for (b, v) in spec {
                    t.write(*b, &fill(*v));
                }
                pool.commit(t).expect("spanning frontier commit");
                *committed += 1;
            }
        }))
    };
    let crashed = match outcome {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashTripped>().is_some() => true,
        Err(p) => std::panic::resume_unwind(p),
    };
    (committed, crashed)
}

/// Enumerates crash frontiers for a spanning-transaction workload. The
/// script is single-threaded (the spanning path serialises pool-wide
/// anyway), so every device's event stream is replay-stable; each
/// device's fence epochs are enumerated in turn, the crash landing on
/// that device while the others lose their volatile state.
pub fn spanning_frontier_campaign(
    shards: usize,
    seed: u64,
    txns: usize,
    cap_per_epoch: usize,
) -> FrontierReport {
    quiet_crash_panics();
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    let plan = {
        let mut rng = StdRng::seed_from_u64(seed);
        spanning_script(&mut rng, txns, 12, shards as u64)
    };

    // Probe: full run, no trip, harvest every device's epochs.
    let (epochs_per_dev, starts) = {
        let (devices, disk, pool_cfg) = build_pool(shards);
        let pool = TincaPool::format(devices.clone(), disk, pool_cfg);
        let starts: Vec<u64> = devices.iter().map(|d| d.events()).collect();
        let (committed, crashed) = run_spanning_script(&pool, &plan);
        drop(pool);
        if crashed || committed != plan.len() {
            report
                .violations
                .push("probe run crashed with no trip armed".into());
            return report;
        }
        let epochs: Vec<Vec<FenceEpoch>> = devices
            .iter()
            .map(|d| epochs_from_trace(&d.take_trace()))
            .collect();
        (epochs, starts)
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &epochs_per_dev,
        &starts,
        Some("device"),
        |s, rel_trip, keep| run_spanning_state(shards, &plan, s, rel_trip, keep),
    )
}

/// One spanning crash state: replay, trip device `trip_dev` at
/// `rel_trip`, resolve its open epoch to exactly `keep` (the other
/// devices lose volatile state), recover the pool, verify.
fn run_spanning_state(
    shards: usize,
    plan: &[TxnSpec],
    trip_dev: usize,
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let (devices, disk, pool_cfg) = build_pool(shards);
    let pool = TincaPool::format(devices.clone(), disk.clone(), pool_cfg.clone());
    let metadata_ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();
    devices[trip_dev].set_trip(Some(rel_trip));
    let (committed, crashed) = run_spanning_script(&pool, plan);
    devices[trip_dev].set_trip(None);
    drop(pool);

    if !crashed {
        return Err("trip did not fire on replay (stream not deterministic?)".into());
    }
    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    devices[trip_dev].crash_frontier(&keep_set);
    for (s, d) in devices.iter().enumerate() {
        if s != trip_dev {
            d.crash(CrashPolicy::LoseVolatile);
        }
    }
    let pool = TincaPool::recover(devices.clone(), disk, pool_cfg)
        .map_err(|e| format!("recovery failed: {e}"))?;
    verify_spanning(&pool, &devices, &metadata_ranges, plan, committed)
}

/// Post-recovery oracle for the spanning campaign: internals, per-shard
/// and merged persist-order cleanliness, committed durability, and
/// whole-transaction atomicity of the in-flight spanning commit.
fn verify_spanning(
    pool: &TincaPool,
    devices: &[Nvm],
    metadata_ranges: &[Vec<std::ops::Range<usize>>],
    plan: &[TxnSpec],
    committed: usize,
) -> Result<(), String> {
    pool.check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;

    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(trace);
        let rep = checker.report();
        if !rep.is_clean() {
            return Err(format!("shard {s} analyzer violation: {rep}"));
        }
    }
    let shard_capacity = devices[0].capacity();
    let merged_ranges: Vec<_> = metadata_ranges
        .iter()
        .enumerate()
        .flat_map(|(s, ranges)| {
            let base = s * shard_capacity;
            ranges.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let rep = checker.report();
    if !rep.is_clean() {
        return Err(format!("merged-trace analyzer violation: {rep}"));
    }

    // Durability + whole-txn atomicity. Blocks whose in-flight value
    // equals their last committed value cannot witness either outcome
    // and are skipped.
    let mut durable: HashMap<u64, u8> = HashMap::new();
    for spec in &plan[..committed] {
        for &(b, v) in spec {
            durable.insert(b, v);
        }
    }
    let in_flight = &plan[committed];
    let staged: HashMap<u64, u8> = in_flight.iter().copied().collect();
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in &durable {
        if staged.contains_key(&b) {
            continue;
        }
        pool.read(b, &mut buf)
            .map_err(|e| format!("read {b}: {e}"))?;
        if buf != fill(v) {
            return Err(format!(
                "durable block {b}: expected fill {v:#x}, read {:#x}",
                buf[0]
            ));
        }
    }
    let mut news: Vec<u64> = Vec::new();
    let mut olds: Vec<u64> = Vec::new();
    for &(b, v) in in_flight {
        let old = durable.get(&b).copied().unwrap_or(0);
        if old == v {
            continue;
        }
        pool.read(b, &mut buf)
            .map_err(|e| format!("read {b}: {e}"))?;
        if buf == fill(v) {
            news.push(b);
        } else if buf == fill(old) {
            olds.push(b);
        } else {
            return Err(format!("in-flight block {b} is torn: read {:#x}", buf[0]));
        }
    }
    if !news.is_empty() && !olds.is_empty() {
        return Err(format!(
            "in-flight spanning txn not atomic: blocks {news:?} read new, {olds:?} read old"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmsim::{NvmDevice, NvmTech};

    fn traced_device() -> Nvm {
        NvmDevice::new(
            NvmConfig::new(4096, NvmTech::Pcm).with_tracing(),
            SimClock::new(),
        )
    }

    #[test]
    fn epochs_from_trace_finds_staged_sets_and_trip_ordinals() {
        let d = traced_device();
        d.write(0, &[1u8; 64]);
        d.write(128, &[2u8; 64]);
        d.clflush(0, 64); //   event 1 (staged line 0)
        d.clflush(128, 64); // event 2 (staged line 2)
        d.sfence(); //         event 3
        d.clflush(0, 64); //   event 4: clean flush, no staging
        d.sfence(); //         event 5: empty epoch, not reported
        d.write(64, &[3u8; 64]);
        d.clflush(64, 64); //  event 6 (staged line 1)
        d.clflush(0, 64); //   event 7: clean, must not move the trip
        d.sfence(); //         event 8
        let epochs = epochs_from_trace(&d.take_trace());
        assert_eq!(
            epochs,
            vec![
                FenceEpoch {
                    staged: vec![0, 2],
                    trip_event: 2
                },
                FenceEpoch {
                    staged: vec![1],
                    trip_event: 6
                },
            ]
        );
    }

    #[test]
    fn epoch_event_count_matches_device_counter() {
        let d = traced_device();
        d.write(0, &[1u8; 200]); // spans lines 0..=3
        d.clflush(0, 200); // 4 line events
        d.atomic_write_u64(256, 7); // 1 event
        d.sfence(); // 1 event
        assert_eq!(d.events(), 6);
        let epochs = epochs_from_trace(&d.take_trace());
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].staged, vec![0, 1, 2, 3]);
        // The atomic store only dirties the overlay (it stages nothing),
        // so the last staged clflush remains event 4.
        assert_eq!(epochs[0].trip_event, 4);
    }

    #[test]
    fn frontiers_exhaustive_when_under_cap() {
        let (f, capped) = frontiers(&[3, 7], 8, 1);
        assert!(!capped);
        assert_eq!(f.len(), 4);
        assert!(f.contains(&vec![]));
        assert!(f.contains(&vec![3]));
        assert!(f.contains(&vec![7]));
        assert!(f.contains(&vec![3, 7]));
    }

    #[test]
    fn frontiers_capped_sample_keeps_extremes() {
        let staged: Vec<usize> = (0..20).collect();
        let (f, capped) = frontiers(&staged, 6, 42);
        assert!(capped);
        assert!(f.len() <= 6);
        assert!(f.contains(&vec![]));
        assert!(f.contains(&staged));
        // Deterministic across calls.
        assert_eq!(f, frontiers(&staged, 6, 42).0);
    }

    #[test]
    fn fs_frontier_enumeration_recovers_clean() {
        let report = frontier_fs_campaign(System::Tinca, 11, 8, 4);
        assert!(report.clean(), "{:?}", report.violations);
        assert!(report.epochs_total > 0, "probe found no workload epochs");
        assert!(report.states_run >= 2 * report.epochs_total);
        // The commit record is a single line: some epochs must have been
        // enumerated exhaustively even with a tiny cap.
        assert!(report.epochs_exhaustive > 0, "{report}");
    }

    #[test]
    fn spanning_frontier_enumeration_is_all_or_nothing() {
        let report = spanning_frontier_campaign(2, 9, 2, 4);
        assert!(report.clean(), "{:?}", report.violations);
        assert!(report.epochs_total > 0, "probe found no workload epochs");
        // Epochs exist on both devices: the intent record lives on device
        // 0, the second fragment commits on device 1.
        assert!(report.states_run >= 2 * report.epochs_total);
    }

    #[test]
    fn pool_frontier_enumeration_recovers_clean_multithreaded() {
        let report = pool_frontier_campaign(2, 5, 2, 4);
        assert!(report.clean(), "{:?}", report.violations);
        assert!(report.epochs_total > 0, "probe found no workload epochs");
        // Data-block epochs (64 lines) must have hit the cap, and the
        // report must say so.
        assert!(report.epochs_capped > 0, "{report}");
    }
}
