//! The recoverable-application abstraction the crash campaigns share.
//!
//! Every crash campaign in this crate — and the kvdb campaigns layered on
//! top — has the same skeleton: set up a seeded workload with a trip
//! armed, run until the trip fires (or the workload completes),
//! power-cycle and recover, then check the recovered state against an
//! oracle. [`RecoverableApp`] captures that skeleton; [`run_recoverable`]
//! drives one seed and [`campaign`] aggregates a sweep of seeds, so a new
//! application only writes its workload, recovery, and oracle — never the
//! campaign scaffolding.

/// One crashable application run: the campaign driver calls
/// [`run_to_trip`](Self::run_to_trip) once, and — only if the trip fired —
/// [`crash_recover`](Self::crash_recover) then [`verify`](Self::verify).
/// Setup (building devices, arming the trip, seeding the script) happens
/// in the app's constructor.
pub trait RecoverableApp {
    /// Runs the workload with the crash trip armed. Returns `true` if the
    /// trip fired (workload interrupted mid-operation), `false` if the
    /// workload ran to completion first.
    fn run_to_trip(&mut self) -> bool;

    /// Simulates the power failure and recovers: resolves each device's
    /// un-fenced write-back state, then runs the recovery path. An error
    /// is a *violation* — recovery must always succeed after an injected
    /// crash.
    fn crash_recover(&mut self) -> Result<(), String>;

    /// Checks the recovered state against the application's oracle
    /// (durability of acknowledged commits, all-or-nothing in-flight
    /// state, internal invariants, persist-order cleanliness).
    fn verify(&mut self) -> Result<(), String>;
}

/// The outcome of one [`run_recoverable`] drive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppOutcome {
    /// Workload completed before the trip fired.
    Completed,
    /// Crash injected; recovery verified clean.
    CrashedVerified,
    /// Recovery or verification failed — a consistency bug.
    Violation(String),
}

/// Drives one application through the crash experiment: run to the trip,
/// and if it fired, recover and verify.
pub fn run_recoverable<A: RecoverableApp>(app: &mut A) -> AppOutcome {
    if !app.run_to_trip() {
        return AppOutcome::Completed;
    }
    if let Err(e) = app.crash_recover() {
        return AppOutcome::Violation(e);
    }
    match app.verify() {
        Ok(()) => AppOutcome::CrashedVerified,
        Err(e) => AppOutcome::Violation(e),
    }
}

/// Aggregate over a campaign of seeds.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    pub runs: u64,
    pub completed: u64,
    pub crashes: u64,
    pub violations: Vec<String>,
}

impl CampaignReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `runs` seeds through `run_seed` (which typically constructs an app
/// for the seed index and calls [`run_recoverable`]) and aggregates the
/// outcomes. With `count_seeds`, each outcome also bumps the
/// `crash.seeds.*` telemetry counters.
pub fn campaign<F>(runs: u64, count_seeds: bool, mut run_seed: F) -> CampaignReport
where
    F: FnMut(u64) -> AppOutcome,
{
    let mut report = CampaignReport::default();
    for i in 0..runs {
        report.runs += 1;
        match run_seed(i) {
            AppOutcome::Completed => {
                report.completed += 1;
                if count_seeds {
                    telemetry::count("crash.seeds.completed", 1);
                }
            }
            AppOutcome::CrashedVerified => {
                report.crashes += 1;
                if count_seeds {
                    telemetry::count("crash.seeds.crashed", 1);
                }
            }
            AppOutcome::Violation(v) => {
                report.crashes += 1;
                if count_seeds {
                    telemetry::count("crash.seeds.violations", 1);
                }
                report.violations.push(v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scripted {
        crashes: bool,
        recover: Result<(), String>,
        verify: Result<(), String>,
    }

    impl RecoverableApp for Scripted {
        fn run_to_trip(&mut self) -> bool {
            self.crashes
        }
        fn crash_recover(&mut self) -> Result<(), String> {
            self.recover.clone()
        }
        fn verify(&mut self) -> Result<(), String> {
            self.verify.clone()
        }
    }

    #[test]
    fn completed_skips_recovery() {
        let mut app = Scripted {
            crashes: false,
            recover: Err("recovery must not run".into()),
            verify: Err("verify must not run".into()),
        };
        assert_eq!(run_recoverable(&mut app), AppOutcome::Completed);
    }

    #[test]
    fn recovery_failure_is_a_violation() {
        let mut app = Scripted {
            crashes: true,
            recover: Err("boom".into()),
            verify: Ok(()),
        };
        assert_eq!(
            run_recoverable(&mut app),
            AppOutcome::Violation("boom".into())
        );
    }

    #[test]
    fn campaign_aggregates() {
        let outcomes = [
            AppOutcome::Completed,
            AppOutcome::CrashedVerified,
            AppOutcome::Violation("v".into()),
        ];
        let mut it = outcomes.iter().cloned();
        let r = campaign(3, false, |_| it.next().expect("three outcomes"));
        assert_eq!((r.runs, r.completed, r.crashes), (3, 1, 2));
        assert_eq!(r.violations, vec!["v".to_string()]);
        assert!(!r.clean());
    }
}
