//! HDFS-like chunked, replicated write path (§5.3.1): a name node picks a
//! replica pipeline per chunk; TeraGen streams rows into chunks.

use fssim::stack::StackConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ClusterReport, NetModel, NodeCmd, NodeHandle};

/// An HDFS-like cluster: a name node (chunk→pipeline placement) over N
/// data nodes.
pub struct HdfsCluster {
    nodes: Vec<NodeHandle>,
    replicas: usize,
    chunk_bytes: u64,
    rng: StdRng,
    next_pipeline_start: usize,
}

impl HdfsCluster {
    /// HDFS data-path software overhead per append (packet processing,
    /// checksum, pipeline acks).
    pub const OP_OVERHEAD_NS: u64 = 50_000;

    /// TeraGen's client-side row generation rate (single mapper JVM with
    /// CRC checksumming ≈ 80 MB/s). At low replica counts the *client* is
    /// the bottleneck, which is why the paper's Fig. 10 gap between the
    /// two storage stacks widens as replication multiplies storage work.
    pub const CLIENT_NS_PER_MB: u64 = 12_000_000;

    /// Spawns `n_nodes` data nodes, each with a stack built from `cfg`.
    pub fn new(n_nodes: usize, replicas: usize, cfg: &StackConfig, chunk_bytes: u64) -> Self {
        assert!(replicas >= 1 && replicas <= n_nodes, "1 ≤ replicas ≤ nodes");
        let net = NetModel::ten_gbe();
        let nodes = (0..n_nodes)
            .map(|i| NodeHandle::spawn(i, cfg.clone(), net, Self::OP_OVERHEAD_NS))
            .collect();
        HdfsCluster {
            nodes,
            replicas,
            chunk_bytes,
            rng: StdRng::seed_from_u64(0x4DF5),
            next_pipeline_start: 0,
        }
    }

    /// The name node's placement: `replicas` distinct nodes, rotating so
    /// load spreads evenly (HDFS randomises; rotation keeps determinism).
    fn place(&mut self) -> Vec<usize> {
        let n = self.nodes.len();
        let start = self.next_pipeline_start;
        self.next_pipeline_start = (self.next_pipeline_start + 1) % n;
        (0..self.replicas).map(|k| (start + k) % n).collect()
    }

    /// Power-fails data node `node` at this point in the stream (commands
    /// already queued complete first; the node reboots through recovery).
    pub fn crash_node(&self, node: usize, seed: u64) {
        self.nodes[node].send(NodeCmd::Crash { seed });
    }

    /// Writes a TeraGen-style dataset of `total_bytes` (100 B rows,
    /// buffered into ~16 KB appends), replicated `replicas`-way. Returns
    /// the aggregate report.
    pub fn run_teragen(mut self, total_bytes: u64, write_bytes: usize) -> ClusterReport {
        let mut written = 0u64;
        let mut chunk_idx = 0u64;
        let mut buf = vec![0u8; write_bytes];
        while written < total_bytes {
            // One chunk: place it, create the chunk file on each replica,
            // stream appends down the pipeline.
            let pipeline = self.place();
            let chunk_name = format!("chunk-{chunk_idx:06}");
            for &ni in &pipeline {
                self.nodes[ni].send(NodeCmd::Create {
                    name: chunk_name.clone(),
                });
            }
            let mut in_chunk = 0u64;
            while in_chunk < self.chunk_bytes && written < total_bytes {
                self.rng.fill(&mut buf[..]);
                let n = (write_bytes as u64)
                    .min(self.chunk_bytes - in_chunk)
                    .min(total_bytes - written) as usize;
                for &ni in &pipeline {
                    self.nodes[ni].send(NodeCmd::Append {
                        name: chunk_name.clone(),
                        data: buf[..n].to_vec(),
                        net_bytes: n as u64,
                    });
                }
                in_chunk += n as u64;
                written += n as u64;
            }
            // HDFS finalises (hflushes) the chunk on close.
            for &ni in &pipeline {
                self.nodes[ni].send(NodeCmd::Fsync);
            }
            chunk_idx += 1;
        }
        let nodes = self
            .nodes
            .into_iter()
            .map(super::node::NodeHandle::finish)
            .collect::<Vec<_>>();
        ClusterReport {
            label: format!("teragen r={}", self.replicas),
            nodes,
            client_ops: written / 100, // rows
            client_bytes: written,
            client_floor_ns: written / (1 << 20) * Self::CLIENT_NS_PER_MB,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::System;

    #[test]
    fn replication_multiplies_node_traffic() {
        let run = |replicas: usize| {
            let cfg = StackConfig::tiny(System::Tinca);
            let cluster = HdfsCluster::new(4, replicas, &cfg, 1 << 20);
            cluster.run_teragen(2 << 20, 16 << 10)
        };
        let r1 = run(1);
        let r3 = run(3);
        assert!(r1.exec_seconds() > 0.0);
        // 3 replicas ⇒ ~3× aggregate bytes ⇒ ~3× total flushes.
        let ratio = r3.total_clflush() as f64 / r1.total_clflush() as f64;
        assert!((2.0..4.5).contains(&ratio), "clflush ratio {ratio}");
        assert!(r3.exec_seconds() > r1.exec_seconds());
    }

    #[test]
    fn chunks_rotate_across_nodes() {
        let cfg = StackConfig::tiny(System::Tinca);
        let cluster = HdfsCluster::new(4, 1, &cfg, 1 << 20);
        let report = cluster.run_teragen(4 << 20, 16 << 10);
        // 4 chunks, one per node: every node holds exactly one file.
        for n in &report.nodes {
            assert_eq!(n.files, 1, "node {} files {}", n.node_id, n.files);
        }
    }

    #[test]
    fn cluster_tolerates_a_node_crash_mid_run() {
        let cfg = StackConfig::tiny(System::Tinca);
        let cluster = HdfsCluster::new(4, 2, &cfg, 1 << 20);
        // Crash node 1 after the stream has started (commands queue up; the
        // crash lands between two of its appends).
        cluster.crash_node(1, 42);
        let report = cluster.run_teragen(3 << 20, 16 << 10);
        assert_eq!(report.client_bytes, 3 << 20);
        // Every node still finished with its chunks intact.
        for n in &report.nodes {
            assert!(n.files > 0, "node {} lost its chunks", n.node_id);
        }
    }

    #[test]
    #[should_panic(expected = "replicas")]
    fn too_many_replicas_rejected() {
        let cfg = StackConfig::tiny(System::Tinca);
        let _ = HdfsCluster::new(2, 3, &cfg, 1 << 20);
    }
}
