//! # cluster — HDFS- and GlusterFS-like replicated storage (Fig. 9)
//!
//! The paper's cluster tests run four storage nodes over 10 GbE, each node
//! being a full local stack (file system + NVM cache + SSD), integrated as
//! the local storage manager of HDFS (TeraGen, Fig. 10) and GlusterFS
//! (Filebench, Fig. 11).
//!
//! Here every node owns a complete simulated stack and runs on its own OS
//! thread, driven through crossbeam channels; a 10 GbE latency/bandwidth
//! model charges network time to the receiving node's simulated clock.
//! Cluster execution time is the maximum simulated time across nodes —
//! replicas work in parallel, exactly like a replication pipeline.

//! ```
//! use cluster::HdfsCluster;
//! use fssim::stack::{StackConfig, System};
//!
//! let cfg = StackConfig::tiny(System::Tinca);
//! let cluster = HdfsCluster::new(4, 2, &cfg, 1 << 20);
//! let report = cluster.run_teragen(2 << 20, 16 << 10);
//! assert_eq!(report.client_bytes, 2 << 20);
//! assert!(report.exec_seconds() > 0.0);
//! ```

pub mod gluster;
pub mod hdfs;
pub mod net;
pub mod node;
pub mod report;

pub use gluster::{GlusterCluster, GlusterFilebench};
pub use hdfs::HdfsCluster;
pub use net::NetModel;
pub use node::{NodeCmd, NodeHandle, NodeReport};
pub use report::ClusterReport;
