//! Aggregated cluster measurements.

use crate::NodeReport;

/// Aggregate over all nodes of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    pub label: String,
    pub nodes: Vec<NodeReport>,
    /// Client-side operation count (rows, file ops, …).
    pub client_ops: u64,
    /// Application bytes the client generated (pre-replication).
    pub client_bytes: u64,
    /// Minimum execution time imposed by the client itself (0 when the
    /// client is never the bottleneck).
    pub client_floor_ns: u64,
}

impl ClusterReport {
    /// Cluster execution time = the slowest of the storage nodes and the
    /// client floor (replicas run in parallel), in simulated seconds
    /// (Fig. 10(a)).
    pub fn exec_seconds(&self) -> f64 {
        let node_max = self.nodes.iter().map(|n| n.sim_ns).max().unwrap_or(0);
        node_max.max(self.client_floor_ns) as f64 / 1e9
    }

    /// Total `clflush` across nodes per client MB (Fig. 10(b), 11(b)).
    pub fn clflush_per_mb(&self) -> f64 {
        let mb = self.client_bytes as f64 / (1 << 20) as f64;
        if mb == 0.0 {
            return 0.0;
        }
        self.total_clflush() as f64 / mb
    }

    /// Total disk blocks written per client MB (Fig. 10(c), 11(c)).
    pub fn disk_writes_per_mb(&self) -> f64 {
        let mb = self.client_bytes as f64 / (1 << 20) as f64;
        if mb == 0.0 {
            return 0.0;
        }
        self.total_disk_writes() as f64 / mb
    }

    /// Client operations per simulated second (Fig. 11(a)'s OPs/s).
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.exec_seconds();
        if s == 0.0 {
            return 0.0;
        }
        self.client_ops as f64 / s
    }

    /// `clflush` per client operation (Fig. 11(b)).
    pub fn clflush_per_op(&self) -> f64 {
        self.total_clflush() as f64 / self.client_ops.max(1) as f64
    }

    /// Disk blocks written per client operation (Fig. 11(c)).
    pub fn disk_writes_per_op(&self) -> f64 {
        self.total_disk_writes() as f64 / self.client_ops.max(1) as f64
    }

    pub fn total_clflush(&self) -> u64 {
        self.nodes.iter().map(|n| n.nvm.clflush).sum()
    }

    pub fn total_disk_writes(&self) -> u64 {
        self.nodes.iter().map(|n| n.disk.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::DiskStats;
    use fssim::{CacheSnapshot, FsStats};
    use nvmsim::NvmStats;

    fn node(id: usize, sim_ns: u64, clflush: u64, writes: u64) -> NodeReport {
        NodeReport {
            node_id: id,
            sim_ns,
            nvm: NvmStats {
                clflush,
                ..Default::default()
            },
            disk: DiskStats {
                writes,
                ..Default::default()
            },
            fs: FsStats::default(),
            cache: CacheSnapshot::default(),
            files: 0,
        }
    }

    #[test]
    fn slowest_node_defines_exec_time() {
        let r = ClusterReport {
            label: "t".into(),
            nodes: vec![
                node(0, 1_000_000_000, 100, 4),
                node(1, 3_000_000_000, 200, 8),
            ],
            client_ops: 30,
            client_bytes: 2 << 20,
            client_floor_ns: 0,
        };
        assert_eq!(r.exec_seconds(), 3.0);
        assert_eq!(r.total_clflush(), 300);
        assert_eq!(r.clflush_per_mb(), 150.0);
        assert_eq!(r.disk_writes_per_mb(), 6.0);
        assert_eq!(r.ops_per_sec(), 10.0);
    }

    #[test]
    fn client_floor_bounds_exec_time() {
        let r = ClusterReport {
            label: "t".into(),
            nodes: vec![node(0, 1_000_000_000, 1, 1)],
            client_ops: 1,
            client_bytes: 1 << 20,
            client_floor_ns: 5_000_000_000,
        };
        assert_eq!(r.exec_seconds(), 5.0, "client bottleneck dominates");
    }
}
