//! A storage node: one full stack on its own thread, driven by commands.

use blockdev::{BlockDevice, DiskStats};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use fssim::stack::{build, remount, StackConfig};
use fssim::{CacheSnapshot, FsStats};
use nvmsim::NvmStats;

use crate::NetModel;

/// Commands a node accepts from the cluster client.
pub enum NodeCmd {
    Create {
        name: String,
    },
    /// Write `data` at `offset`; `net_bytes` is charged to the node's
    /// clock as network transfer before the write executes.
    Write {
        name: String,
        offset: u64,
        data: Vec<u8>,
        net_bytes: u64,
    },
    Append {
        name: String,
        data: Vec<u8>,
        net_bytes: u64,
    },
    /// Read `len` bytes; the reply channel, when given, receives the data
    /// (tests); otherwise the read is applied for its cost only.
    Read {
        name: String,
        offset: u64,
        len: usize,
        reply: Option<Sender<Vec<u8>>>,
    },
    Delete {
        name: String,
    },
    Fsync,
    /// Re-baselines the node's measurement window (used after a setup
    /// phase so reports cover only the measured phase).
    Mark,
    /// Power-fails this node: DRAM state dies, the NVM resolves its
    /// volatile write-back state adversarially (seeded), and the node
    /// reboots through cache recovery + journal replay before processing
    /// the next command.
    Crash {
        seed: u64,
    },
    /// Finish: flush, report, and shut the node down.
    Finish {
        reply: Sender<NodeReport>,
    },
}

/// What a node reports when finished.
#[derive(Clone, Debug)]
pub struct NodeReport {
    pub node_id: usize,
    /// Simulated ns spent since the measurement baseline (post-setup).
    pub sim_ns: u64,
    pub nvm: NvmStats,
    pub disk: DiskStats,
    pub fs: FsStats,
    pub cache: CacheSnapshot,
    pub files: usize,
}

/// Client-side handle to a running node.
pub struct NodeHandle {
    pub node_id: usize,
    tx: Sender<NodeCmd>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Spawns a node thread with a freshly built stack. Returns once the
    /// node finished formatting (so setup cost is excluded from reports).
    ///
    /// `op_overhead_ns` models the distributed file system's per-operation
    /// software cost (RPC dispatch, FUSE crossings, replication
    /// coordination) charged on every data command.
    pub fn spawn(
        node_id: usize,
        cfg: StackConfig,
        net: NetModel,
        op_overhead_ns: u64,
    ) -> NodeHandle {
        let (tx, rx) = unbounded::<NodeCmd>();
        let (ready_tx, ready_rx) = bounded::<()>(1);
        let join = std::thread::Builder::new()
            .name(format!("node-{node_id}"))
            .spawn(move || node_main(node_id, cfg, net, op_overhead_ns, rx, ready_tx))
            .expect("spawn node thread");
        ready_rx.recv().expect("node ready");
        NodeHandle {
            node_id,
            tx,
            join: Some(join),
        }
    }

    pub fn send(&self, cmd: NodeCmd) {
        self.tx.send(cmd).expect("node alive");
    }

    /// Finishes the node and collects its report.
    pub fn finish(mut self) -> NodeReport {
        let (tx, rx) = bounded(1);
        self.tx
            .send(NodeCmd::Finish { reply: tx })
            .expect("node alive");
        let report = rx.recv().expect("node report");
        if let Some(j) = self.join.take() {
            j.join().expect("node thread joined cleanly");
        }
        report
    }
}

fn node_main(
    node_id: usize,
    cfg: StackConfig,
    net: NetModel,
    op_overhead_ns: u64,
    rx: Receiver<NodeCmd>,
    ready: Sender<()>,
) {
    let mut stack = build(&cfg).expect("node stack");
    // Baseline after formatting: reports cover the measured phase only.
    let mut t0 = stack.clock.now_ns();
    let mut nvm0 = stack.nvm.stats();
    let mut disk0 = stack.disk.stats();
    let mut fs0 = stack.fs.stats();
    let mut cache0 = stack.fs.backend().cache_snapshot();
    // FS/cache counters die with the process at a node crash; fold the
    // pre-crash deltas into these accumulators so reports stay cumulative.
    let mut fs_acc = FsStats::default();
    let mut cache_acc = CacheSnapshot::default();
    ready.send(()).ok();

    while let Ok(cmd) = rx.recv() {
        match cmd {
            NodeCmd::Mark => {
                stack.fs.fsync().expect("fsync at mark");
                t0 = stack.clock.now_ns();
                nvm0 = stack.nvm.stats();
                disk0 = stack.disk.stats();
                fs0 = stack.fs.stats();
                cache0 = stack.fs.backend().cache_snapshot();
            }
            NodeCmd::Crash { seed } => {
                fs_acc = fs_acc + stack.fs.stats().delta(&fs0);
                cache_acc = cache_acc + stack.fs.backend().cache_snapshot().delta(&cache0);
                let (nvm, disk, clock) =
                    (stack.nvm.clone(), stack.disk.clone(), stack.clock.clone());
                drop(stack);
                nvm.crash(nvmsim::CrashPolicy::Random(seed));
                // Reboot penalty: detection + restart of the storage daemon.
                clock.advance(2_000_000_000);
                stack = remount(&cfg, nvm, disk, clock).expect("node reboot");
                fs0 = stack.fs.stats();
                cache0 = stack.fs.backend().cache_snapshot();
            }
            NodeCmd::Create { name } => {
                stack.clock.advance(net.transfer_ns(64) + op_overhead_ns);
                stack.fs.create(&name).expect("create");
            }
            NodeCmd::Write {
                name,
                offset,
                data,
                net_bytes,
            } => {
                stack
                    .clock
                    .advance(net.transfer_ns(net_bytes) + op_overhead_ns);
                let ino = stack.fs.open(&name).expect("open");
                stack.fs.write(ino, offset, &data).expect("write");
            }
            NodeCmd::Append {
                name,
                data,
                net_bytes,
            } => {
                stack
                    .clock
                    .advance(net.transfer_ns(net_bytes) + op_overhead_ns);
                let ino = stack.fs.open(&name).expect("open");
                stack.fs.append(ino, &data).expect("append");
            }
            NodeCmd::Read {
                name,
                offset,
                len,
                reply,
            } => {
                stack.clock.advance(op_overhead_ns);
                let ino = stack.fs.open(&name).expect("open");
                let mut buf = vec![0u8; len];
                let n = stack.fs.read(ino, offset, &mut buf).expect("read");
                buf.truncate(n);
                stack.clock.advance(net.transfer_ns(n as u64));
                if let Some(r) = reply {
                    r.send(buf).ok();
                }
            }
            NodeCmd::Delete { name } => {
                stack.clock.advance(net.transfer_ns(64) + op_overhead_ns);
                stack.fs.delete(&name).expect("delete");
            }
            NodeCmd::Fsync => {
                stack.fs.fsync().expect("fsync");
            }
            NodeCmd::Finish { reply } => {
                stack.fs.fsync().expect("final fsync");
                let report = NodeReport {
                    node_id,
                    sim_ns: stack.clock.now_ns() - t0,
                    nvm: stack.nvm.stats().delta(&nvm0),
                    disk: stack.disk.stats().delta(&disk0),
                    fs: fs_acc + stack.fs.stats().delta(&fs0),
                    cache: cache_acc + stack.fs.backend().cache_snapshot().delta(&cache0),
                    files: stack.fs.file_count(),
                };
                reply.send(report).ok();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::System;

    #[test]
    fn node_round_trip() {
        let h = NodeHandle::spawn(0, StackConfig::tiny(System::Tinca), NetModel::ten_gbe(), 0);
        h.send(NodeCmd::Create { name: "a".into() });
        h.send(NodeCmd::Write {
            name: "a".into(),
            offset: 0,
            data: vec![7u8; 5000],
            net_bytes: 5000,
        });
        h.send(NodeCmd::Fsync);
        let (tx, rx) = bounded(1);
        h.send(NodeCmd::Read {
            name: "a".into(),
            offset: 0,
            len: 5000,
            reply: Some(tx),
        });
        let data = rx.recv().unwrap();
        assert_eq!(data.len(), 5000);
        assert!(data.iter().all(|&b| b == 7));
        let report = h.finish();
        assert_eq!(report.files, 1);
        assert!(report.sim_ns > 0);
        assert!(report.nvm.clflush > 0);
    }

    #[test]
    fn node_survives_a_crash_reboot_cycle() {
        let h = NodeHandle::spawn(2, StackConfig::tiny(System::Tinca), NetModel::ten_gbe(), 0);
        h.send(NodeCmd::Create {
            name: "durable".into(),
        });
        h.send(NodeCmd::Write {
            name: "durable".into(),
            offset: 0,
            data: vec![0xCD; 6000],
            net_bytes: 6000,
        });
        h.send(NodeCmd::Fsync);
        h.send(NodeCmd::Crash { seed: 1234 });
        // Post-reboot, the fsynced file must read back intact, and the
        // node keeps serving.
        let (tx, rx) = bounded(1);
        h.send(NodeCmd::Read {
            name: "durable".into(),
            offset: 0,
            len: 6000,
            reply: Some(tx),
        });
        let data = rx.recv().unwrap();
        assert!(
            data.iter().all(|&b| b == 0xCD),
            "data lost across node crash"
        );
        h.send(NodeCmd::Append {
            name: "durable".into(),
            data: vec![1u8; 100],
            net_bytes: 100,
        });
        let report = h.finish();
        assert_eq!(report.files, 1);
        assert!(
            report.sim_ns >= 2_000_000_000,
            "reboot penalty must show in time"
        );
    }

    #[test]
    fn network_cost_is_charged() {
        let h = NodeHandle::spawn(1, StackConfig::tiny(System::Tinca), NetModel::ten_gbe(), 0);
        h.send(NodeCmd::Create { name: "big".into() });
        h.send(NodeCmd::Write {
            name: "big".into(),
            offset: 0,
            data: vec![1u8; 1 << 20],
            net_bytes: 1 << 20,
        });
        let report = h.finish();
        // At least the 1 MB transfer time (≈ 0.84 ms) must be present.
        assert!(report.sim_ns > 800_000, "sim_ns {}", report.sim_ns);
    }
}
