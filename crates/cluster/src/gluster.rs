//! GlusterFS-like distributed file system (§5.3.2): files are distributed
//! by name hash to replica groups; the client mirrors writes to every
//! replica of the group (AFR-style client-side replication).

use blockdev::BLOCK_SIZE;
use fssim::stack::StackConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ClusterReport, NetModel, NodeCmd, NodeHandle};
use workloads::rand_util::Zipf;

/// A GlusterFS-like cluster: N nodes in groups of `replicas`; file
/// placement by name hash (Gluster's elastic hash), client-side mirroring.
pub struct GlusterCluster {
    nodes: Vec<NodeHandle>,
    replicas: usize,
    groups: usize,
}

impl GlusterCluster {
    /// GlusterFS per-operation software overhead (FUSE crossing, RPC,
    /// AFR replication bookkeeping).
    pub const OP_OVERHEAD_NS: u64 = 250_000;

    pub fn new(n_nodes: usize, replicas: usize, cfg: &StackConfig) -> Self {
        assert!(
            replicas >= 1 && n_nodes.is_multiple_of(replicas),
            "nodes must divide into replica groups"
        );
        let net = NetModel::ten_gbe();
        let nodes = (0..n_nodes)
            .map(|i| NodeHandle::spawn(i, cfg.clone(), net, Self::OP_OVERHEAD_NS))
            .collect();
        GlusterCluster {
            nodes,
            replicas,
            groups: n_nodes / replicas,
        }
    }

    /// The replica group (node indices) a file hashes to.
    fn group_of(&self, name: &str) -> Vec<usize> {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let g = (h % self.groups as u64) as usize;
        (0..self.replicas).map(|k| g * self.replicas + k).collect()
    }

    fn create(&self, name: &str) {
        for ni in self.group_of(name) {
            self.nodes[ni].send(NodeCmd::Create {
                name: name.to_string(),
            });
        }
    }

    fn write(&self, name: &str, offset: u64, data: Vec<u8>) {
        for ni in self.group_of(name) {
            self.nodes[ni].send(NodeCmd::Write {
                name: name.to_string(),
                offset,
                data: data.clone(),
                net_bytes: data.len() as u64,
            });
        }
    }

    fn read(&self, name: &str, offset: u64, len: usize) {
        // Reads go to the group primary only.
        let primary = self.group_of(name)[0];
        self.nodes[primary].send(NodeCmd::Read {
            name: name.to_string(),
            offset,
            len,
            reply: None,
        });
    }

    fn delete(&self, name: &str) {
        for ni in self.group_of(name) {
            self.nodes[ni].send(NodeCmd::Delete {
                name: name.to_string(),
            });
        }
    }

    fn fsync_group(&self, name: &str) {
        for ni in self.group_of(name) {
            self.nodes[ni].send(NodeCmd::Fsync);
        }
    }

    /// Re-baselines every node (end of the setup phase).
    pub fn mark_all(&self) {
        for n in &self.nodes {
            n.send(NodeCmd::Mark);
        }
    }

    /// Power-fails node `node` (it reboots through recovery before its
    /// next queued command).
    pub fn crash_node(&self, node: usize, seed: u64) {
        self.nodes[node].send(NodeCmd::Crash { seed });
    }

    fn finish(self, label: String, client_ops: u64, client_bytes: u64) -> ClusterReport {
        let nodes = self
            .nodes
            .into_iter()
            .map(super::node::NodeHandle::finish)
            .collect();
        ClusterReport {
            label,
            nodes,
            client_ops,
            client_bytes,
            client_floor_ns: 0,
        }
    }
}

/// Filebench driven against a [`GlusterCluster`] (Fig. 11): the same
/// personalities and ratios as `workloads::filebench`, with every write
/// mirrored to the file's replica group.
pub struct GlusterFilebench {
    pub personality: workloads::filebench::Personality,
    pub nfiles: usize,
    pub file_bytes: u64,
    pub io_bytes: usize,
    pub ops: u64,
    pub seed: u64,
}

impl GlusterFilebench {
    /// Runs setup + measured phase and returns the aggregate report.
    pub fn run(self, cluster: GlusterCluster) -> ClusterReport {
        use workloads::filebench::Personality;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.nfiles, 0.9);
        let name = |i: usize| format!("gfb-{i:05}");

        // Pool setup.
        let fill = vec![0x55u8; self.file_bytes as usize];
        for i in 0..self.nfiles {
            cluster.create(&name(i));
            cluster.write(&name(i), 0, fill.clone());
        }
        for i in 0..self.nfiles {
            cluster.fsync_group(&name(i));
        }
        cluster.mark_all(); // measurement starts after the pool is loaded

        let (rw_r, rw_w) = match self.personality {
            Personality::Fileserver => (1u32, 2u32),
            Personality::Webproxy => (5, 1),
            Personality::Varmail => (1, 1),
        };
        let max_off = self.file_bytes.saturating_sub(self.io_bytes as u64).max(1);
        let wbuf = vec![0x66u8; self.io_bytes];
        let mut bytes = 0u64;
        let mut deleted: Vec<usize> = Vec::new();
        for _ in 0..self.ops {
            let i = zipf.sample(&mut rng);
            let f = name(i);
            // Pool churn (create/delete flowlets), as in local Filebench —
            // the read-mostly proxy keeps a stable pool.
            if self.personality != Personality::Webproxy && rng.gen_range(0..100) < 4 {
                if let Some(pos) = deleted.iter().position(|&d| d == i) {
                    deleted.swap_remove(pos);
                    cluster.create(&f);
                } else {
                    deleted.push(i);
                    cluster.delete(&f);
                }
                continue;
            }
            if deleted.contains(&i) {
                continue; // deleted and not yet recreated
            }
            let off = rng.gen_range(0..max_off) / BLOCK_SIZE as u64 * BLOCK_SIZE as u64;
            if rng.gen_range(0..rw_r + rw_w) < rw_r {
                cluster.read(&f, off, self.io_bytes);
            } else {
                cluster.write(&f, off, wbuf.clone());
                bytes += self.io_bytes as u64;
                if self.personality == Personality::Varmail {
                    cluster.fsync_group(&f);
                }
            }
        }
        let label = format!("gluster {}", self.personality.name());
        cluster.finish(label, self.ops, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::System;
    use workloads::filebench::Personality;

    #[test]
    fn hash_placement_is_stable_and_grouped() {
        let cfg = StackConfig::tiny(System::Tinca);
        let c = GlusterCluster::new(4, 2, &cfg);
        let g1 = c.group_of("some-file");
        let g2 = c.group_of("some-file");
        assert_eq!(g1, g2);
        assert_eq!(g1.len(), 2);
        // Both members in the same group range.
        assert_eq!(g1[0] / 2, g1[1] / 2);
        let _ = c.finish("t".into(), 0, 0);
    }

    #[test]
    fn writes_are_mirrored_to_replicas() {
        let cfg = StackConfig::tiny(System::Tinca);
        let c = GlusterCluster::new(4, 2, &cfg);
        c.create("mirrored");
        c.write("mirrored", 0, vec![9u8; 8192]);
        c.fsync_group("mirrored");
        let group = c.group_of("mirrored");
        let report = c.finish("t".into(), 1, 8192);
        for ni in group {
            assert_eq!(report.nodes[ni].files, 1, "replica {ni} must hold the file");
            assert!(report.nodes[ni].fs.bytes_written >= 8192);
        }
    }

    #[test]
    fn replica_crash_preserves_mirrored_data() {
        let cfg = StackConfig::tiny(System::Tinca);
        let c = GlusterCluster::new(4, 2, &cfg);
        c.create("mail");
        c.write("mail", 0, vec![3u8; 12_000]);
        c.fsync_group("mail");
        // Crash both replicas of the group (worst case), then read back.
        let group = c.group_of("mail");
        for &ni in &group {
            c.crash_node(ni, 99 + ni as u64);
        }
        let (tx, rx) = crossbeam::channel::bounded(1);
        c.nodes[group[0]].send(NodeCmd::Read {
            name: "mail".into(),
            offset: 0,
            len: 12_000,
            reply: Some(tx),
        });
        let data = rx.recv().unwrap();
        assert!(
            data.iter().all(|&b| b == 3),
            "fsynced mirrored data lost in crash"
        );
        let _ = c.finish("t".into(), 1, 12_000);
    }

    #[test]
    fn filebench_runs_on_cluster() {
        let cfg = StackConfig::tiny(System::Classic);
        let cluster = GlusterCluster::new(4, 2, &cfg);
        let fb = GlusterFilebench {
            personality: Personality::Fileserver,
            nfiles: 16,
            file_bytes: 64 << 10,
            io_bytes: 16 << 10,
            ops: 100,
            seed: 11,
        };
        let report = fb.run(cluster);
        assert_eq!(report.client_ops, 100);
        assert!(report.ops_per_sec() > 0.0);
        assert!(report.total_clflush() > 0);
    }
}
