//! 10 GbE network cost model.

/// Latency/bandwidth model for the cluster interconnect (the paper: four
/// nodes on 10 Gigabit Ethernet).
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Per-message overhead in ns (kernel + NIC + switch).
    pub base_ns: u64,
    /// Nanoseconds per byte (10 GbE ≈ 1.25 GB/s ≈ 0.8 ns/B).
    pub ns_per_byte_x1000: u64,
}

impl NetModel {
    /// 10 GbE defaults: 40 µs per message, 1.25 GB/s.
    pub fn ten_gbe() -> NetModel {
        NetModel {
            base_ns: 40_000,
            ns_per_byte_x1000: 800,
        }
    }

    /// Cost of moving `bytes` in one message.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.base_ns + bytes * self.ns_per_byte_x1000 / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_latency_bound() {
        let n = NetModel::ten_gbe();
        assert!(n.transfer_ns(100) < 2 * n.base_ns);
    }

    #[test]
    fn large_transfers_are_bandwidth_bound() {
        let n = NetModel::ten_gbe();
        // 1 MB at 1.25 GB/s ≈ 0.84 ms ≫ base latency.
        let t = n.transfer_ns(1 << 20);
        assert!(t > 10 * n.base_ns);
        // Within 2× of the ideal line rate.
        let ideal = (1u64 << 20) * 800 / 1000;
        assert!(t < 2 * ideal);
    }

    #[test]
    fn monotone_in_size() {
        let n = NetModel::ten_gbe();
        assert!(n.transfer_ns(2000) > n.transfer_ns(1000));
    }
}
