//! In-memory sparse-block disk simulator.

use std::collections::HashMap;
use std::sync::Arc;

use nvmsim::SimClock;
use parking_lot::Mutex;

use crate::{
    BatchReport, BlockDevice, DiskKind, DiskStats, IoError, IoLane, LatencyModel, BLOCK_SIZE,
};

/// Cloneable handle to a [`SimDisk`].
pub type Disk = Arc<SimDisk>;

struct State {
    blocks: HashMap<u64, Box<[u8; BLOCK_SIZE]>>,
    last_blk: u64,
    stats: DiskStats,
}

/// A simulated disk: sparse in-memory block store + latency model.
///
/// Blocks never written read back as zeroes. All latency is charged to the
/// shared [`SimClock`] of the owning storage stack — including the latency
/// of *failed* requests: the head still seeks and the device is busy even
/// when no data is transferred, so an error never buys a free seek.
pub struct SimDisk {
    model: LatencyModel,
    num_blocks: u64,
    clock: SimClock,
    state: Mutex<State>,
}

impl SimDisk {
    /// Creates a disk of `num_blocks` 4 KB blocks.
    pub fn new(kind: DiskKind, num_blocks: u64, clock: SimClock) -> Disk {
        Arc::new(Self {
            model: LatencyModel::new(kind),
            num_blocks,
            clock,
            state: Mutex::new(State {
                blocks: HashMap::new(),
                last_blk: 0,
                stats: DiskStats::default(),
            }),
        })
    }

    /// The disk's latency class.
    pub fn kind(&self) -> DiskKind {
        self.model.kind()
    }

    /// Number of distinct blocks that have ever been written (for memory
    /// accounting in large simulations).
    pub fn resident_blocks(&self) -> usize {
        self.state.lock().blocks.len()
    }

    /// Charges the cost of an attempted-but-failed media access targeting
    /// `blk`: the head seeks to the (clamped) target, the device is busy
    /// for the model's full duration, and an error counter bumps — but no
    /// data moves. Used internally for out-of-range requests and by fault
    /// wrappers (e.g. [`crate::FaultyDisk`]) so injected errors advance
    /// `last_blk` and the clock exactly like real failed I/Os: without
    /// this, an HDD retry after an error would look sequential and get a
    /// free seek.
    pub fn charge_failed_io(&self, blk: u64, write: bool) {
        self.charge_failed_io_on(blk, write, IoLane::Foreground);
    }

    /// Lane-aware variant of [`Self::charge_failed_io`]: on
    /// [`IoLane::Background`] the head still moves and `busy_ns` and the
    /// error counters still bump, but the foreground clock does not
    /// advance. Returns the device time consumed so background callers
    /// can extend their lane's completion time.
    pub fn charge_failed_io_on(&self, blk: u64, write: bool, lane: IoLane) -> u64 {
        let target = blk.min(self.num_blocks.saturating_sub(1));
        let mut st = self.state.lock();
        let ns = if write {
            self.model.write_ns(target, st.last_blk)
        } else {
            self.model.read_ns(target, st.last_blk)
        };
        st.last_blk = target;
        if write {
            st.stats.write_errors += 1;
        } else {
            st.stats.read_errors += 1;
        }
        st.stats.busy_ns += ns;
        drop(st);
        if lane == IoLane::Foreground {
            self.clock.advance(ns);
            telemetry::charge(telemetry::phase::DISK_FAULT, ns);
        }
        ns
    }

    /// Charges `ns` of extra device busy time with no head movement — a
    /// latency spike (controller hiccup, internal GC pause).
    pub fn charge_latency_spike(&self, ns: u64) {
        self.charge_latency_spike_on(ns, IoLane::Foreground);
    }

    /// Lane-aware variant of [`Self::charge_latency_spike`]; background
    /// spikes occupy the device but do not stall the foreground clock.
    pub fn charge_latency_spike_on(&self, ns: u64, lane: IoLane) -> u64 {
        self.state.lock().stats.busy_ns += ns;
        if lane == IoLane::Foreground {
            self.clock.advance(ns);
            telemetry::charge(telemetry::phase::DISK_SPIKE, ns);
        }
        ns
    }
}

impl BlockDevice for SimDisk {
    fn read_block(&self, blk: u64, buf: &mut [u8]) -> Result<(), IoError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _t = telemetry::span(telemetry::phase::DISK_READ);
        if blk >= self.num_blocks {
            self.charge_failed_io(blk, false);
            return Err(IoError::OutOfRange {
                blk,
                num_blocks: self.num_blocks,
            });
        }
        let mut st = self.state.lock();
        match st.blocks.get(&blk) {
            Some(b) => buf.copy_from_slice(&b[..]),
            None => buf.fill(0),
        }
        let ns = self.model.read_ns(blk, st.last_blk);
        st.last_blk = blk;
        st.stats.reads += 1;
        st.stats.busy_ns += ns;
        self.clock.advance(ns);
        Ok(())
    }

    fn write_block(&self, blk: u64, buf: &[u8]) -> Result<(), IoError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _t = telemetry::span(telemetry::phase::DISK_WRITE);
        if blk >= self.num_blocks {
            self.charge_failed_io(blk, true);
            return Err(IoError::OutOfRange {
                blk,
                num_blocks: self.num_blocks,
            });
        }
        let mut st = self.state.lock();
        let entry = st
            .blocks
            .entry(blk)
            .or_insert_with(|| Box::new([0u8; BLOCK_SIZE]));
        entry.copy_from_slice(buf);
        let ns = self.model.write_ns(blk, st.last_blk);
        st.last_blk = blk;
        st.stats.writes += 1;
        st.stats.busy_ns += ns;
        self.clock.advance(ns);
        Ok(())
    }

    /// Batched write path: one lock pass over the whole request vector.
    /// The first request of each address-contiguous run pays the full
    /// random-access cost; every follower pays only streaming cost
    /// ([`LatencyModel::streaming_write_ns`]). Out-of-range requests
    /// charge a failed media attempt exactly like the per-block path and
    /// do not abort the rest of the batch.
    fn write_blocks(&self, reqs: &[(u64, &[u8])], lane: IoLane) -> BatchReport {
        let mut errors = Vec::new();
        let mut ok_ns = 0u64;
        let mut fault_ns = 0u64;
        {
            let mut st = self.state.lock();
            let mut in_batch = false;
            for (i, (blk, buf)) in reqs.iter().enumerate() {
                assert_eq!(buf.len(), BLOCK_SIZE);
                if *blk >= self.num_blocks {
                    let target = (*blk).min(self.num_blocks.saturating_sub(1));
                    let ns = self.model.write_ns(target, st.last_blk);
                    st.last_blk = target;
                    st.stats.write_errors += 1;
                    st.stats.busy_ns += ns;
                    fault_ns += ns;
                    in_batch = false;
                    errors.push((
                        i,
                        IoError::OutOfRange {
                            blk: *blk,
                            num_blocks: self.num_blocks,
                        },
                    ));
                    continue;
                }
                let ns = if in_batch {
                    self.model.streaming_write_ns(*blk, st.last_blk)
                } else {
                    self.model.write_ns(*blk, st.last_blk)
                };
                in_batch = true;
                let entry = st
                    .blocks
                    .entry(*blk)
                    .or_insert_with(|| Box::new([0u8; BLOCK_SIZE]));
                entry.copy_from_slice(buf);
                st.last_blk = *blk;
                st.stats.writes += 1;
                st.stats.busy_ns += ns;
                ok_ns += ns;
            }
        }
        if lane == IoLane::Foreground {
            self.clock.advance(ok_ns + fault_ns);
            if ok_ns > 0 {
                telemetry::charge(telemetry::phase::DISK_WRITE, ok_ns);
            }
            if fault_ns > 0 {
                telemetry::charge(telemetry::phase::DISK_FAULT, fault_ns);
            }
        }
        BatchReport {
            errors,
            device_ns: ok_ns + fault_ns,
        }
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn stats(&self) -> DiskStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(kind: DiskKind) -> Disk {
        SimDisk::new(kind, 1024, SimClock::new())
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = disk(DiskKind::Ssd);
        let mut b = [1u8; BLOCK_SIZE];
        d.read_block(7, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let d = disk(DiskKind::Ssd);
        let data = [0x5Au8; BLOCK_SIZE];
        d.write_block(3, &data).unwrap();
        let mut b = [0u8; BLOCK_SIZE];
        d.read_block(3, &mut b).unwrap();
        assert_eq!(b, data);
    }

    #[test]
    fn stats_and_clock_advance() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Ssd, 16, clock.clone());
        let buf = [0u8; BLOCK_SIZE];
        d.write_block(0, &buf).unwrap();
        d.write_block(1, &buf).unwrap();
        let mut rb = [0u8; BLOCK_SIZE];
        d.read_block(0, &mut rb).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(clock.now_ns(), s.busy_ns);
        assert_eq!(s.busy_ns, 80_000 * 2 + 60_000);
    }

    #[test]
    fn hdd_charges_seek_on_random_access() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Hdd, 1 << 20, clock.clone());
        let buf = [0u8; BLOCK_SIZE];
        d.write_block(0, &buf).unwrap();
        let t0 = clock.now_ns();
        d.write_block(1, &buf).unwrap(); // sequential
        let seq = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        d.write_block(900_000, &buf).unwrap(); // long seek
        let rnd = clock.now_ns() - t1;
        assert!(rnd > 100 * seq);
    }

    #[test]
    fn resident_blocks_tracks_sparse_usage() {
        let d = disk(DiskKind::Ssd);
        assert_eq!(d.resident_blocks(), 0);
        d.write_block(1, &[0u8; BLOCK_SIZE]).unwrap();
        d.write_block(1, &[1u8; BLOCK_SIZE]).unwrap();
        d.write_block(2, &[2u8; BLOCK_SIZE]).unwrap();
        assert_eq!(d.resident_blocks(), 2);
    }

    #[test]
    fn oob_access_errors_instead_of_panicking() {
        let d = disk(DiskKind::Ssd);
        assert_eq!(
            d.write_block(5000, &[0u8; BLOCK_SIZE]),
            Err(IoError::OutOfRange {
                blk: 5000,
                num_blocks: 1024
            })
        );
        let mut b = [0u8; BLOCK_SIZE];
        assert_eq!(
            d.read_block(9999, &mut b),
            Err(IoError::OutOfRange {
                blk: 9999,
                num_blocks: 1024
            })
        );
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (0, 0), "failed I/O transfers nothing");
        assert_eq!((s.read_errors, s.write_errors), (1, 1));
    }

    #[test]
    fn batched_contiguous_writes_stream_after_one_seek() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Ssd, 1024, clock.clone());
        let bufs: Vec<[u8; BLOCK_SIZE]> = (0..8u8).map(|i| [i; BLOCK_SIZE]).collect();
        let reqs: Vec<(u64, &[u8])> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u64 + 100, &b[..]))
            .collect();
        let r = d.write_blocks(&reqs, IoLane::Foreground);
        assert!(r.all_ok());
        // One full 80 µs op plus 7 streamed followers — far below 8 random ops.
        assert!(
            r.device_ns < 8 * 80_000 / 4,
            "batch {} should amortise",
            r.device_ns
        );
        assert!(r.device_ns >= 80_000);
        assert_eq!(
            clock.now_ns(),
            r.device_ns,
            "foreground lane advances the clock"
        );
        let mut buf = [0u8; BLOCK_SIZE];
        for (i, b) in bufs.iter().enumerate() {
            d.read_block(i as u64 + 100, &mut buf).unwrap();
            assert_eq!(&buf, b);
        }
    }

    #[test]
    fn background_lane_charges_busy_but_not_the_clock() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Hdd, 1 << 20, clock.clone());
        let buf = [3u8; BLOCK_SIZE];
        let reqs: Vec<(u64, &[u8])> = (0..4u64).map(|i| (i * 50_000, &buf[..])).collect();
        let r = d.write_blocks(&reqs, IoLane::Background);
        assert!(r.all_ok());
        assert!(r.device_ns > 0);
        assert_eq!(clock.now_ns(), 0, "background I/O overlaps foreground time");
        assert_eq!(d.stats().busy_ns, r.device_ns, "device was still occupied");
        assert_eq!(d.stats().writes, 4);
    }

    #[test]
    fn batch_oob_request_errors_without_aborting_the_rest() {
        let d = disk(DiskKind::Ssd);
        let buf = [9u8; BLOCK_SIZE];
        let reqs: Vec<(u64, &[u8])> = vec![(1, &buf), (5000, &buf), (2, &buf)];
        let r = d.write_blocks(&reqs, IoLane::Foreground);
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.errors[0].0, 1);
        assert!(matches!(
            r.errors[0].1,
            IoError::OutOfRange { blk: 5000, .. }
        ));
        let s = d.stats();
        assert_eq!((s.writes, s.write_errors), (2, 1));
        let mut rb = [0u8; BLOCK_SIZE];
        d.read_block(2, &mut rb).unwrap();
        assert_eq!(rb, buf);
    }

    #[test]
    fn lane_aware_failed_io_and_spike_skip_the_clock() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Ssd, 64, clock.clone());
        let ns = d.charge_failed_io_on(999, true, IoLane::Background);
        d.charge_latency_spike_on(5_000, IoLane::Background);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(d.stats().busy_ns, ns + 5_000);
        assert_eq!(d.stats().write_errors, 1);
    }

    #[test]
    fn failed_io_still_charges_seek_and_moves_head() {
        // HDD: a failed access seeks to the (clamped) target, so the next
        // access from there is sequential — and the failed attempt itself
        // pays the full random-access cost (no free seeks after an error).
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Hdd, 1024, clock.clone());
        let buf = [0u8; BLOCK_SIZE];
        d.write_block(0, &buf).unwrap();
        let t0 = clock.now_ns();
        assert!(d.write_block(5000, &buf).is_err()); // clamps head to 1023
        let failed_cost = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        d.write_block(1023, &buf).unwrap(); // head already there
        let settled_cost = clock.now_ns() - t1;
        assert!(
            failed_cost > 50 * settled_cost,
            "failed I/O {failed_cost} must pay the seek; follow-up {settled_cost} is sequential"
        );
        assert_eq!(d.stats().busy_ns, clock.now_ns());
    }
}
