//! In-memory sparse-block disk simulator.

use std::collections::HashMap;
use std::sync::Arc;

use nvmsim::SimClock;
use parking_lot::Mutex;

use crate::{BlockDevice, DiskKind, DiskStats, LatencyModel, BLOCK_SIZE};

/// Cloneable handle to a [`SimDisk`].
pub type Disk = Arc<SimDisk>;

struct State {
    blocks: HashMap<u64, Box<[u8; BLOCK_SIZE]>>,
    last_blk: u64,
    stats: DiskStats,
}

/// A simulated disk: sparse in-memory block store + latency model.
///
/// Blocks never written read back as zeroes. All latency is charged to the
/// shared [`SimClock`] of the owning storage stack.
pub struct SimDisk {
    model: LatencyModel,
    num_blocks: u64,
    clock: SimClock,
    state: Mutex<State>,
}

impl SimDisk {
    /// Creates a disk of `num_blocks` 4 KB blocks.
    pub fn new(kind: DiskKind, num_blocks: u64, clock: SimClock) -> Disk {
        Arc::new(Self {
            model: LatencyModel::new(kind),
            num_blocks,
            clock,
            state: Mutex::new(State {
                blocks: HashMap::new(),
                last_blk: 0,
                stats: DiskStats::default(),
            }),
        })
    }

    /// The disk's latency class.
    pub fn kind(&self) -> DiskKind {
        self.model.kind()
    }

    /// Number of distinct blocks that have ever been written (for memory
    /// accounting in large simulations).
    pub fn resident_blocks(&self) -> usize {
        self.state.lock().blocks.len()
    }
}

impl BlockDevice for SimDisk {
    fn read_block(&self, blk: u64, buf: &mut [u8]) {
        assert!(blk < self.num_blocks, "disk read out of range: {blk}");
        assert_eq!(buf.len(), BLOCK_SIZE);
        let mut st = self.state.lock();
        match st.blocks.get(&blk) {
            Some(b) => buf.copy_from_slice(&b[..]),
            None => buf.fill(0),
        }
        let ns = self.model.read_ns(blk, st.last_blk);
        st.last_blk = blk;
        st.stats.reads += 1;
        st.stats.busy_ns += ns;
        self.clock.advance(ns);
    }

    fn write_block(&self, blk: u64, buf: &[u8]) {
        assert!(blk < self.num_blocks, "disk write out of range: {blk}");
        assert_eq!(buf.len(), BLOCK_SIZE);
        let mut st = self.state.lock();
        let entry = st
            .blocks
            .entry(blk)
            .or_insert_with(|| Box::new([0u8; BLOCK_SIZE]));
        entry.copy_from_slice(buf);
        let ns = self.model.write_ns(blk, st.last_blk);
        st.last_blk = blk;
        st.stats.writes += 1;
        st.stats.busy_ns += ns;
        self.clock.advance(ns);
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn stats(&self) -> DiskStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(kind: DiskKind) -> Disk {
        SimDisk::new(kind, 1024, SimClock::new())
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = disk(DiskKind::Ssd);
        let mut b = [1u8; BLOCK_SIZE];
        d.read_block(7, &mut b);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let d = disk(DiskKind::Ssd);
        let data = [0x5Au8; BLOCK_SIZE];
        d.write_block(3, &data);
        let mut b = [0u8; BLOCK_SIZE];
        d.read_block(3, &mut b);
        assert_eq!(b, data);
    }

    #[test]
    fn stats_and_clock_advance() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Ssd, 16, clock.clone());
        let buf = [0u8; BLOCK_SIZE];
        d.write_block(0, &buf);
        d.write_block(1, &buf);
        let mut rb = [0u8; BLOCK_SIZE];
        d.read_block(0, &mut rb);
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(clock.now_ns(), s.busy_ns);
        assert_eq!(s.busy_ns, 80_000 * 2 + 60_000);
    }

    #[test]
    fn hdd_charges_seek_on_random_access() {
        let clock = SimClock::new();
        let d = SimDisk::new(DiskKind::Hdd, 1 << 20, clock.clone());
        let buf = [0u8; BLOCK_SIZE];
        d.write_block(0, &buf);
        let t0 = clock.now_ns();
        d.write_block(1, &buf); // sequential
        let seq = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        d.write_block(900_000, &buf); // long seek
        let rnd = clock.now_ns() - t1;
        assert!(rnd > 100 * seq);
    }

    #[test]
    fn resident_blocks_tracks_sparse_usage() {
        let d = disk(DiskKind::Ssd);
        assert_eq!(d.resident_blocks(), 0);
        d.write_block(1, &[0u8; BLOCK_SIZE]);
        d.write_block(1, &[1u8; BLOCK_SIZE]);
        d.write_block(2, &[2u8; BLOCK_SIZE]);
        assert_eq!(d.resident_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_write_panics() {
        let d = disk(DiskKind::Ssd);
        d.write_block(5000, &[0u8; BLOCK_SIZE]);
    }
}
