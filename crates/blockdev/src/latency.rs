//! Disk latency models.

use crate::BLOCK_SIZE;

/// The class of backing disk (§5.4.1 compares SSD and HDD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// SATA SSD: fixed per-4K-block latencies.
    Ssd,
    /// 7200 RPM hard disk: seek + rotational + transfer.
    Hdd,
}

impl DiskKind {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            DiskKind::Ssd => "SSD",
            DiskKind::Hdd => "HDD",
        }
    }
}

/// Computes per-request latency for a [`DiskKind`].
#[derive(Clone, Debug)]
pub struct LatencyModel {
    kind: DiskKind,
}

impl LatencyModel {
    pub fn new(kind: DiskKind) -> Self {
        Self { kind }
    }

    pub fn kind(&self) -> DiskKind {
        self.kind
    }

    /// Latency in ns of reading one 4 KB block at `blk`, given the previous
    /// head position `last_blk` (ignored for SSDs).
    pub fn read_ns(&self, blk: u64, last_blk: u64) -> u64 {
        match self.kind {
            DiskKind::Ssd => 60_000, // ~60 µs random 4K read, SATA SSD
            DiskKind::Hdd => hdd_ns(blk, last_blk),
        }
    }

    /// Latency in ns of writing one 4 KB block.
    pub fn write_ns(&self, blk: u64, last_blk: u64) -> u64 {
        match self.kind {
            DiskKind::Ssd => 80_000, // ~80 µs random 4K write, SATA SSD
            DiskKind::Hdd => hdd_ns(blk, last_blk),
        }
    }

    /// Latency in ns of a write that *continues* a vectored batch whose
    /// previous request landed at `last_blk`. Address-contiguous
    /// requests pay only sequential streaming cost: the SSD amortises
    /// its per-command overhead (~500 MB/s sequential instead of one
    /// 80 µs random 4K op), the HDD amortises seek + rotation (its
    /// [`Self::write_ns`] is already sequential-aware). A
    /// non-contiguous request starts a new run and pays the full
    /// random-access cost.
    pub fn streaming_write_ns(&self, blk: u64, last_blk: u64) -> u64 {
        match self.kind {
            DiskKind::Ssd => {
                if blk == last_blk + 1 || blk == last_blk {
                    SSD_STREAM_NS
                } else {
                    self.write_ns(blk, last_blk)
                }
            }
            DiskKind::Hdd => hdd_ns(blk, last_blk),
        }
    }
}

/// Streaming 4 KB write on a SATA SSD at ~500 MB/s sequential.
const SSD_STREAM_NS: u64 = BLOCK_SIZE as u64 * 1_000_000_000 / (500 * 1024 * 1024);

/// 7200 RPM disk: ~4.16 ms mean rotational delay, seek scaled by distance
/// up to ~9 ms full stroke, ~150 MB/s sequential transfer. Consecutive
/// blocks pay only transfer cost.
fn hdd_ns(blk: u64, last_blk: u64) -> u64 {
    const TRANSFER_NS: u64 = BLOCK_SIZE as u64 * 1_000_000_000 / (150 * 1024 * 1024);
    if blk == last_blk + 1 || blk == last_blk {
        return TRANSFER_NS;
    }
    let distance = blk.abs_diff(last_blk);
    // Seek time grows sub-linearly with distance; cap at full stroke.
    let seek = 1_000_000 + (distance as f64).sqrt() as u64 * 1_500;
    let seek = seek.min(9_000_000);
    let rotation = 4_160_000;
    seek + rotation + TRANSFER_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_is_position_independent() {
        let m = LatencyModel::new(DiskKind::Ssd);
        assert_eq!(m.write_ns(0, 1_000_000), m.write_ns(5, 6));
        assert_eq!(m.read_ns(0, 99), 60_000);
    }

    #[test]
    fn hdd_sequential_is_cheap() {
        let m = LatencyModel::new(DiskKind::Hdd);
        let seq = m.write_ns(101, 100);
        let rand = m.write_ns(1_000_000, 100);
        assert!(
            rand > 50 * seq,
            "random {rand} should dwarf sequential {seq}"
        );
    }

    #[test]
    fn hdd_much_slower_than_ssd_random() {
        let ssd = LatencyModel::new(DiskKind::Ssd).write_ns(123_456, 0);
        let hdd = LatencyModel::new(DiskKind::Hdd).write_ns(123_456, 0);
        assert!(hdd > 20 * ssd);
    }

    #[test]
    fn ssd_streaming_amortises_contiguous_writes() {
        let m = LatencyModel::new(DiskKind::Ssd);
        let stream = m.streaming_write_ns(101, 100);
        assert!(
            stream < m.write_ns(101, 100) / 5,
            "contiguous SSD write {stream} should be far below the 80 µs random cost"
        );
        // A non-contiguous request inside a batch starts a new run at
        // full cost; re-writing the same block streams too.
        assert_eq!(m.streaming_write_ns(500, 100), m.write_ns(500, 100));
        assert_eq!(m.streaming_write_ns(100, 100), stream);
    }

    #[test]
    fn hdd_streaming_matches_sequential_model() {
        let m = LatencyModel::new(DiskKind::Hdd);
        assert_eq!(m.streaming_write_ns(101, 100), m.write_ns(101, 100));
        assert_eq!(m.streaming_write_ns(9999, 100), m.write_ns(9999, 100));
    }

    #[test]
    fn hdd_seek_caps_at_full_stroke() {
        let m = LatencyModel::new(DiskKind::Hdd);
        let far = m.read_ns(u64::MAX / 2, 0);
        assert!(far < 20_000_000, "latency should stay bounded: {far}");
    }
}
