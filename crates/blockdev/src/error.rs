//! Block-device I/O errors.
//!
//! Real devices fail: a request can land outside the device, a sector can
//! return an uncorrectable media error transiently (vibration, marginal
//! cells) or permanently (grown defects), and the paper's Tinca prototype
//! sits directly above such devices. Every [`crate::BlockDevice`] method
//! that touches media reports these as [`IoError`] so the cache layers can
//! retry, quarantine, or degrade instead of silently corrupting state.

use std::fmt;

/// An error returned by a [`crate::BlockDevice`] I/O request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoError {
    /// The request addressed a block beyond the end of the device.
    OutOfRange { blk: u64, num_blocks: u64 },
    /// A read failed transiently; the same request may succeed if retried.
    TransientRead { blk: u64 },
    /// A write failed transiently; the same request may succeed if retried.
    TransientWrite { blk: u64 },
    /// The block is permanently bad (grown defect); retrying cannot help.
    BadBlock { blk: u64 },
}

impl IoError {
    /// Whether retrying the same request can succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IoError::TransientRead { .. } | IoError::TransientWrite { .. }
        )
    }

    /// The block number the failed request addressed.
    pub fn blk(&self) -> u64 {
        match *self {
            IoError::OutOfRange { blk, .. }
            | IoError::TransientRead { blk }
            | IoError::TransientWrite { blk }
            | IoError::BadBlock { blk } => blk,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfRange { blk, num_blocks } => {
                write!(f, "block {blk} out of range (device has {num_blocks})")
            }
            IoError::TransientRead { blk } => write!(f, "transient read error at block {blk}"),
            IoError::TransientWrite { blk } => write!(f, "transient write error at block {blk}"),
            IoError::BadBlock { blk } => write!(f, "permanently bad block {blk}"),
        }
    }
}

impl std::error::Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(IoError::TransientRead { blk: 1 }.is_transient());
        assert!(IoError::TransientWrite { blk: 1 }.is_transient());
        assert!(!IoError::BadBlock { blk: 1 }.is_transient());
        assert!(!IoError::OutOfRange {
            blk: 9,
            num_blocks: 4
        }
        .is_transient());
    }

    #[test]
    fn display_names_the_block() {
        assert!(IoError::BadBlock { blk: 42 }.to_string().contains("42"));
        assert_eq!(IoError::TransientWrite { blk: 7 }.blk(), 7);
    }
}
