//! Disk I/O counters (the paper reports disk blocks written per operation).

/// Cumulative counters for one disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Simulated nanoseconds spent in this device (successful and failed
    /// requests alike — a failed attempt still occupies the device).
    pub busy_ns: u64,
    /// Read requests that failed (no data transferred).
    pub read_errors: u64,
    /// Write requests that failed (no data transferred).
    pub write_errors: u64,
}

impl DiskStats {
    /// Per-field difference `self - earlier`.
    pub fn delta(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            busy_ns: self.busy_ns - earlier.busy_ns,
            read_errors: self.read_errors - earlier.read_errors,
            write_errors: self.write_errors - earlier.write_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = DiskStats {
            reads: 1,
            writes: 2,
            busy_ns: 10,
            read_errors: 0,
            write_errors: 1,
        };
        let b = DiskStats {
            reads: 5,
            writes: 7,
            busy_ns: 50,
            read_errors: 2,
            write_errors: 3,
        };
        assert_eq!(
            b.delta(&a),
            DiskStats {
                reads: 4,
                writes: 5,
                busy_ns: 40,
                read_errors: 2,
                write_errors: 2,
            }
        );
    }
}
