//! The block device abstraction used by caches and file systems.

use crate::{DiskStats, IoError};

/// Block size of the disks and caches in this reproduction (the paper's
/// cache manages NVM "in a unit of 4KB block by default", §4.2).
pub const BLOCK_SIZE: usize = 4096;

/// Which simulated-time lane an I/O is charged to.
///
/// The stack models overlap of background I/O with foreground work the
/// same way `workloads::mtfio` models shard parallelism: device busy
/// time (`DiskStats::busy_ns`) always accumulates, but only
/// **foreground** requests advance the stack's shared `SimClock`.
/// Background requests (destage writebacks) consume device time on a
/// separate lane; the *caller* decides when that lane's completion time
/// forces the foreground clock forward (e.g. a drain or a full pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoLane {
    /// The request is on the critical path: charge `busy_ns` **and**
    /// advance the simulated clock (the classic synchronous model).
    Foreground,
    /// The request overlaps foreground compute: charge `busy_ns` only.
    /// The returned [`BatchReport::device_ns`] tells the caller how long
    /// the device was occupied so it can track lane completion.
    Background,
}

/// Outcome of one vectored [`BlockDevice::write_blocks`] request.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Requests that failed, as `(index into the request slice, error)`.
    /// Per-block error semantics are preserved: a failure of request `i`
    /// never prevents request `i+1` from being attempted.
    pub errors: Vec<(usize, IoError)>,
    /// Total device time consumed by the batch (successful transfers,
    /// failed media attempts, and injected spikes). On
    /// [`IoLane::Foreground`] the same amount was also charged to the
    /// simulated clock; on [`IoLane::Background`] only `busy_ns` moved.
    pub device_ns: u64,
}

impl BatchReport {
    /// True if every request in the batch succeeded.
    pub fn all_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A block-addressed storage device.
///
/// Blocks are addressed by a `u64` logical block number. Reads of blocks
/// never written return zeroes (as a fresh device would). I/O is
/// **fallible**: requests can fail transiently or permanently
/// ([`IoError`]); callers decide whether to retry, quarantine, or
/// propagate. A failed request still consumes device time (the media
/// attempt happened), so latency models stay honest under faults.
pub trait BlockDevice: Send + Sync {
    /// Reads block `blk` into `buf` (`buf.len() == BLOCK_SIZE`).
    fn read_block(&self, blk: u64, buf: &mut [u8]) -> Result<(), IoError>;

    /// Writes `buf` (`BLOCK_SIZE` bytes) to block `blk`. Writes are modelled
    /// as durable when the call returns `Ok` (the devices in this
    /// reproduction are the *backing* store below the NVM cache; their
    /// internal caching is outside the paper's consistency argument).
    fn write_block(&self, blk: u64, buf: &[u8]) -> Result<(), IoError>;

    /// Vectored write: submits every `(blk, buf)` request as one batch.
    ///
    /// Latency models may amortise per-request overhead across
    /// address-contiguous runs (one seek + sequential streaming instead
    /// of N independent random accesses); the resulting data on the
    /// device is **byte-identical** to issuing the same requests through
    /// [`write_block`](Self::write_block) one at a time, and per-block
    /// error semantics are preserved (see [`BatchReport::errors`]).
    ///
    /// The default implementation loops `write_block`, which always
    /// charges the foreground clock; devices with a real batched path
    /// override this to price runs and honour `lane`.
    fn write_blocks(&self, reqs: &[(u64, &[u8])], lane: IoLane) -> BatchReport {
        let _ = lane;
        let before = self.stats().busy_ns;
        let mut errors = Vec::new();
        for (i, (blk, buf)) in reqs.iter().enumerate() {
            if let Err(e) = self.write_block(*blk, buf) {
                errors.push((i, e));
            }
        }
        BatchReport {
            errors,
            device_ns: self.stats().busy_ns - before,
        }
    }

    /// Number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Snapshot of the device's cumulative counters.
    fn stats(&self) -> DiskStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_is_4k() {
        assert_eq!(BLOCK_SIZE, 4096);
    }
}
