//! The block device abstraction used by caches and file systems.

use crate::{DiskStats, IoError};

/// Block size of the disks and caches in this reproduction (the paper's
/// cache manages NVM "in a unit of 4KB block by default", §4.2).
pub const BLOCK_SIZE: usize = 4096;

/// A block-addressed storage device.
///
/// Blocks are addressed by a `u64` logical block number. Reads of blocks
/// never written return zeroes (as a fresh device would). I/O is
/// **fallible**: requests can fail transiently or permanently
/// ([`IoError`]); callers decide whether to retry, quarantine, or
/// propagate. A failed request still consumes device time (the media
/// attempt happened), so latency models stay honest under faults.
pub trait BlockDevice: Send + Sync {
    /// Reads block `blk` into `buf` (`buf.len() == BLOCK_SIZE`).
    fn read_block(&self, blk: u64, buf: &mut [u8]) -> Result<(), IoError>;

    /// Writes `buf` (`BLOCK_SIZE` bytes) to block `blk`. Writes are modelled
    /// as durable when the call returns `Ok` (the devices in this
    /// reproduction are the *backing* store below the NVM cache; their
    /// internal caching is outside the paper's consistency argument).
    fn write_block(&self, blk: u64, buf: &[u8]) -> Result<(), IoError>;

    /// Number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Snapshot of the device's cumulative counters.
    fn stats(&self) -> DiskStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_is_4k() {
        assert_eq!(BLOCK_SIZE, 4096);
    }
}
