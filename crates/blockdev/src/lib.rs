// Test code may unwrap/expect/panic freely; non-test code is held to the
// disallowed-methods ban in this crate's clippy.toml.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

//! # blockdev — simulated SSD and HDD block devices
//!
//! The Tinca paper evaluates its NVM cache on top of a 128 GB SATA SSD and,
//! for Fig. 12(a), a hard disk. This crate provides that disk substrate:
//! a [`BlockDevice`] trait plus [`SimDisk`], an in-memory sparse block
//! store with per-[`DiskKind`] latency models charged against the stack's
//! shared `nvmsim::SimClock`.
//!
//! The evaluation observes *blocks written per operation* and the latency
//! class of the device, so the models are deliberately simple and
//! deterministic: fixed read/write latencies for SSDs; seek-distance +
//! rotational + transfer costs for HDDs.
//!
//! ```
//! use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
//! use nvmsim::SimClock;
//!
//! let clock = SimClock::new();
//! let disk = SimDisk::new(DiskKind::Ssd, 1024, clock.clone());
//! disk.write_block(7, &[0xAB; BLOCK_SIZE]).unwrap();
//! let mut buf = [0u8; BLOCK_SIZE];
//! disk.read_block(7, &mut buf).unwrap();
//! assert_eq!(buf[0], 0xAB);
//! assert_eq!(clock.now_ns(), disk.stats().busy_ns);
//! ```

mod device;
mod error;
mod fault;
mod latency;
mod sim;
mod stats;

pub use device::{BatchReport, BlockDevice, IoLane, BLOCK_SIZE};
pub use error::IoError;
pub use fault::{FaultPlan, FaultStats, FaultyDisk};
pub use latency::{DiskKind, LatencyModel};
pub use sim::{Disk, SimDisk};
pub use stats::DiskStats;
