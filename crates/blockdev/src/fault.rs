//! Deterministic disk fault injection.
//!
//! [`FaultyDisk`] wraps a [`SimDisk`] and injects failures according to a
//! seedable [`FaultPlan`]: transient read/write errors that clear after a
//! bounded burst, permanently bad block ranges (grown defects), and
//! latency spikes. Everything is driven by one seeded RNG plus the access
//! sequence, so a (plan, workload) pair replays bit-for-bit — the property
//! the `faultfuzz` campaign needs to shrink failures to a seed.
//!
//! A failed request still charges the underlying disk's latency model and
//! moves its head ([`SimDisk::charge_failed_io`]); injection can be
//! toggled off (e.g. for post-crash verification reads) without touching
//! the plan.

use std::collections::HashMap;
use std::ops::Range;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{BatchReport, BlockDevice, Disk, DiskStats, IoError, IoLane, BLOCK_SIZE};

/// A deterministic, seedable plan of device faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the per-access RNG stream.
    pub seed: u64,
    /// Per-access probability (in per mille) that a read starts a
    /// transient-error burst.
    pub transient_read_per_mille: u32,
    /// Per-access probability (in per mille) that a write starts a
    /// transient-error burst.
    pub transient_write_per_mille: u32,
    /// Consecutive failures per transient burst. Retry budgets at or above
    /// this absorb every transient fault deterministically.
    pub burst_len: u32,
    /// Permanently bad block ranges: every access fails with
    /// [`IoError::BadBlock`].
    pub bad_ranges: Vec<Range<u64>>,
    /// Stride-pattern bad blocks: `Some((m, r))` marks every block with
    /// `blk % m == r` permanently bad — "shard `r` of an `m`-way pool lost
    /// its backing store".
    pub bad_modulo: Option<(u64, u64)>,
    /// Per-access probability (in per mille) of a latency spike.
    pub spike_per_mille: u32,
    /// Extra latency charged per spike, in ns.
    pub spike_ns: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_read_per_mille: 0,
            transient_write_per_mille: 0,
            burst_len: 1,
            bad_ranges: Vec::new(),
            bad_modulo: None,
            spike_per_mille: 0,
            spike_ns: 0,
        }
    }

    /// Adds transient read errors at `per_mille` per access.
    pub fn with_transient_reads(mut self, per_mille: u32) -> Self {
        self.transient_read_per_mille = per_mille;
        self
    }

    /// Adds transient write errors at `per_mille` per access.
    pub fn with_transient_writes(mut self, per_mille: u32) -> Self {
        self.transient_write_per_mille = per_mille;
        self
    }

    /// Sets how many consecutive attempts each transient burst fails.
    pub fn with_burst_len(mut self, n: u32) -> Self {
        self.burst_len = n.max(1);
        self
    }

    /// Marks `range` permanently bad.
    pub fn with_bad_range(mut self, range: Range<u64>) -> Self {
        self.bad_ranges.push(range);
        self
    }

    /// Marks every block with `blk % modulo == residue` permanently bad.
    pub fn with_bad_modulo(mut self, modulo: u64, residue: u64) -> Self {
        assert!(modulo > 0 && residue < modulo);
        self.bad_modulo = Some((modulo, residue));
        self
    }

    /// Adds latency spikes of `spike_ns` at `per_mille` per access.
    pub fn with_latency_spikes(mut self, per_mille: u32, spike_ns: u64) -> Self {
        self.spike_per_mille = per_mille;
        self.spike_ns = spike_ns;
        self
    }

    /// Whether `blk` is permanently bad under this plan.
    pub fn is_bad(&self, blk: u64) -> bool {
        self.bad_ranges.iter().any(|r| r.contains(&blk))
            || self
                .bad_modulo
                .is_some_and(|(m, r)| blk.checked_rem(m) == Some(r))
    }
}

/// Counters of what the wrapper injected (distinct from [`DiskStats`],
/// which counts what the device experienced).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors injected.
    pub injected_read_errors: u64,
    /// Transient write errors injected.
    pub injected_write_errors: u64,
    /// Accesses rejected because the block is permanently bad.
    pub permanent_rejections: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
}

struct FaultState {
    rng: StdRng,
    enabled: bool,
    /// Remaining failures of the active transient burst, per (blk, write).
    bursts: HashMap<(u64, bool), u32>,
    /// Keys whose burst just drained: the next attempt passes without a
    /// roll, so at most `burst_len` consecutive attempts ever fail — a
    /// retry budget of `burst_len` absorbs every transient fault
    /// deterministically.
    grace: std::collections::HashSet<(u64, bool)>,
    stats: FaultStats,
}

/// A [`BlockDevice`] that injects the faults of a [`FaultPlan`] above a
/// real [`SimDisk`](crate::SimDisk). See the module docs.
pub struct FaultyDisk {
    inner: Disk,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyDisk {
    /// Wraps `inner` with fault injection per `plan` (enabled).
    pub fn new(inner: Disk, plan: FaultPlan) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self {
            state: Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(plan.seed),
                enabled: true,
                bursts: HashMap::new(),
                grace: std::collections::HashSet::new(),
                stats: FaultStats::default(),
            }),
            inner,
            plan,
        })
    }

    /// The wrapped disk.
    pub fn inner(&self) -> &Disk {
        &self.inner
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Turns injection on or off (the plan is kept). Verification passes
    /// disable injection so they observe state rather than perturb it.
    pub fn set_enabled(&self, enabled: bool) {
        self.state.lock().enabled = enabled;
    }

    /// What has been injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Decides the fate of one access. `Some(err)` means inject a failure
    /// (latency charged as a failed media attempt); `None` means pass
    /// through (possibly after a latency spike).
    fn inject(&self, blk: u64, write: bool) -> Option<IoError> {
        match self.decide(blk, write) {
            Fate::Pass => None,
            Fate::Spike => {
                self.inner.charge_latency_spike(self.plan.spike_ns);
                None
            }
            Fate::Bad => {
                self.inner.charge_failed_io(blk, write);
                Some(IoError::BadBlock { blk })
            }
            Fate::Transient => {
                self.inner.charge_failed_io(blk, write);
                Some(if write {
                    IoError::TransientWrite { blk }
                } else {
                    IoError::TransientRead { blk }
                })
            }
        }
    }

    /// Rolls the fate of one access without charging anything. Fates are
    /// decided in strict request order (one RNG draw sequence), so a
    /// vectored batch consumes exactly the same injection schedule as
    /// the equivalent per-block loop.
    fn decide(&self, blk: u64, write: bool) -> Fate {
        // Decide under the fault lock; charge the disk after dropping it
        // (the disk has its own lock).
        {
            let mut st = self.state.lock();
            if !st.enabled {
                Fate::Pass
            } else if self.plan.is_bad(blk) {
                st.stats.permanent_rejections += 1;
                Fate::Bad
            } else {
                let key = (blk, write);
                let in_burst = if let Some(left) = st.bursts.get_mut(&key) {
                    *left -= 1;
                    if *left == 0 {
                        st.bursts.remove(&key);
                        st.grace.insert(key);
                    }
                    true
                } else if st.grace.remove(&key) {
                    false
                } else {
                    let per_mille = if write {
                        self.plan.transient_write_per_mille
                    } else {
                        self.plan.transient_read_per_mille
                    };
                    let fire = per_mille > 0 && st.rng.gen_range(0..1000) < per_mille;
                    if fire {
                        if self.plan.burst_len > 1 {
                            st.bursts.insert(key, self.plan.burst_len - 1);
                        } else {
                            st.grace.insert(key);
                        }
                    }
                    fire
                };
                if in_burst {
                    if write {
                        st.stats.injected_write_errors += 1;
                    } else {
                        st.stats.injected_read_errors += 1;
                    }
                    Fate::Transient
                } else if self.plan.spike_per_mille > 0
                    && st.rng.gen_range(0..1000) < self.plan.spike_per_mille
                {
                    st.stats.latency_spikes += 1;
                    Fate::Spike
                } else {
                    Fate::Pass
                }
            }
        }
    }
}

/// What the injector decided for one access.
enum Fate {
    Pass,
    Spike,
    Bad,
    Transient,
}

impl BlockDevice for FaultyDisk {
    fn read_block(&self, blk: u64, buf: &mut [u8]) -> Result<(), IoError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(err) = self.inject(blk, false) {
            return Err(err);
        }
        self.inner.read_block(blk, buf)
    }

    fn write_block(&self, blk: u64, buf: &[u8]) -> Result<(), IoError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(err) = self.inject(blk, true) {
            return Err(err);
        }
        self.inner.write_block(blk, buf)
    }

    /// Vectored write with fault injection: fates are rolled per block in
    /// request order (same RNG schedule as a per-block loop), and the
    /// batch is **split at fault boundaries** — passing runs go to the
    /// inner disk as sub-batches (keeping the streaming amortisation),
    /// while each injected failure charges a failed media attempt at its
    /// position, so per-block error semantics and head movement are
    /// preserved exactly.
    fn write_blocks(&self, reqs: &[(u64, &[u8])], lane: IoLane) -> BatchReport {
        fn flush(
            disk: &Disk,
            lane: IoLane,
            run: &mut Vec<(u64, &[u8])>,
            run_idx: &mut Vec<usize>,
            report: &mut BatchReport,
        ) {
            if run.is_empty() {
                return;
            }
            let sub = disk.write_blocks(run, lane);
            report.device_ns += sub.device_ns;
            for (j, e) in sub.errors {
                report.errors.push((run_idx[j], e));
            }
            run.clear();
            run_idx.clear();
        }

        let mut report = BatchReport::default();
        let mut run: Vec<(u64, &[u8])> = Vec::new();
        let mut run_idx: Vec<usize> = Vec::new();
        for (i, (blk, buf)) in reqs.iter().enumerate() {
            assert_eq!(buf.len(), BLOCK_SIZE);
            match self.decide(*blk, true) {
                Fate::Pass => {
                    run.push((*blk, buf));
                    run_idx.push(i);
                }
                Fate::Spike => {
                    report.device_ns +=
                        self.inner.charge_latency_spike_on(self.plan.spike_ns, lane);
                    run.push((*blk, buf));
                    run_idx.push(i);
                }
                fate @ (Fate::Bad | Fate::Transient) => {
                    // The pending run must land before the failed attempt
                    // so the head moves in request order.
                    flush(&self.inner, lane, &mut run, &mut run_idx, &mut report);
                    report.device_ns += self.inner.charge_failed_io_on(*blk, true, lane);
                    let err = match fate {
                        Fate::Bad => IoError::BadBlock { blk: *blk },
                        _ => IoError::TransientWrite { blk: *blk },
                    };
                    report.errors.push((i, err));
                }
            }
        }
        flush(&self.inner, lane, &mut run, &mut run_idx, &mut report);
        report
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskKind, SimDisk};
    use nvmsim::SimClock;

    fn base() -> Disk {
        SimDisk::new(DiskKind::Ssd, 1024, SimClock::new())
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let clock = SimClock::new();
        let plain = SimDisk::new(DiskKind::Ssd, 1024, clock.clone());
        let wrapped = FaultyDisk::new(
            SimDisk::new(DiskKind::Ssd, 1024, SimClock::new()),
            FaultPlan::quiet(1),
        );
        let data = [7u8; BLOCK_SIZE];
        let mut buf = [0u8; BLOCK_SIZE];
        for d in [&*plain as &dyn BlockDevice, &*wrapped] {
            d.write_block(3, &data).unwrap();
            d.read_block(3, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
        assert_eq!(plain.stats(), wrapped.stats(), "no plan → identical stats");
        assert_eq!(wrapped.fault_stats(), FaultStats::default());
    }

    #[test]
    fn bad_range_always_fails_and_counts() {
        let d = FaultyDisk::new(base(), FaultPlan::quiet(2).with_bad_range(10..20));
        let data = [1u8; BLOCK_SIZE];
        for _ in 0..3 {
            assert_eq!(d.write_block(15, &data), Err(IoError::BadBlock { blk: 15 }));
        }
        let mut buf = [0u8; BLOCK_SIZE];
        assert_eq!(
            d.read_block(10, &mut buf),
            Err(IoError::BadBlock { blk: 10 })
        );
        d.write_block(9, &data).unwrap();
        d.write_block(20, &data).unwrap();
        assert_eq!(d.fault_stats().permanent_rejections, 4);
        let s = d.stats();
        assert_eq!((s.read_errors, s.write_errors), (1, 3));
    }

    #[test]
    fn bad_modulo_marks_one_shards_blocks() {
        let plan = FaultPlan::quiet(3).with_bad_modulo(4, 2);
        assert!(plan.is_bad(2) && plan.is_bad(6) && plan.is_bad(102));
        assert!(!plan.is_bad(0) && !plan.is_bad(3) && !plan.is_bad(101));
    }

    #[test]
    fn transient_burst_clears_within_burst_len_retries() {
        let plan = FaultPlan::quiet(4)
            .with_transient_writes(1000)
            .with_burst_len(3);
        let d = FaultyDisk::new(base(), plan);
        let data = [9u8; BLOCK_SIZE];
        let mut failures = 0;
        loop {
            match d.write_block(5, &data) {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                    assert!(failures <= 3, "burst must clear after burst_len failures");
                }
            }
        }
        // p=1.0 plan: the burst fires immediately and lasts exactly 3.
        assert_eq!(failures, 3);
        // The write eventually landed.
        let mut buf = [0u8; BLOCK_SIZE];
        d.set_enabled(false);
        d.read_block(5, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let d = FaultyDisk::new(base(), FaultPlan::quiet(seed).with_transient_reads(300));
            let mut buf = [0u8; BLOCK_SIZE];
            (0..64)
                .map(|b| u8::from(d.read_block(b, &mut buf).is_err()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different schedules");
    }

    #[test]
    fn disabled_injection_passes_through() {
        let d = FaultyDisk::new(base(), FaultPlan::quiet(5).with_bad_range(0..1024));
        d.set_enabled(false);
        let data = [3u8; BLOCK_SIZE];
        d.write_block(1, &data).unwrap();
        assert_eq!(d.fault_stats().permanent_rejections, 0);
    }

    #[test]
    fn batched_writes_split_at_fault_boundaries() {
        let d = FaultyDisk::new(base(), FaultPlan::quiet(11).with_bad_range(4..6));
        let bufs: Vec<[u8; BLOCK_SIZE]> = (0..8u8).map(|i| [i + 1; BLOCK_SIZE]).collect();
        let reqs: Vec<(u64, &[u8])> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u64, &b[..]))
            .collect();
        let r = d.write_blocks(&reqs, IoLane::Foreground);
        assert_eq!(r.errors.len(), 2);
        assert!(matches!(r.errors[0], (4, IoError::BadBlock { blk: 4 })));
        assert!(matches!(r.errors[1], (5, IoError::BadBlock { blk: 5 })));
        // Every passing block landed despite the mid-batch failures.
        d.set_enabled(false);
        let mut buf = [0u8; BLOCK_SIZE];
        for (i, b) in bufs.iter().enumerate() {
            if (4..6).contains(&(i as u64)) {
                continue;
            }
            d.read_block(i as u64, &mut buf).unwrap();
            assert_eq!(&buf, b, "block {i}");
        }
        assert_eq!(d.fault_stats().permanent_rejections, 2);
        assert_eq!(d.stats().write_errors, 2);
        assert_eq!(d.stats().writes, 6);
    }

    #[test]
    fn batched_injection_consumes_the_same_rng_schedule_as_per_block() {
        let plan = || {
            FaultPlan::quiet(21)
                .with_transient_writes(300)
                .with_burst_len(1)
        };
        let bufs: Vec<[u8; BLOCK_SIZE]> = (0..32u8).map(|i| [i; BLOCK_SIZE]).collect();
        // Per-block loop.
        let d1 = FaultyDisk::new(base(), plan());
        let per_block: Vec<bool> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| d1.write_block(i as u64, b).is_err())
            .collect();
        // One vectored batch.
        let d2 = FaultyDisk::new(base(), plan());
        let reqs: Vec<(u64, &[u8])> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u64, &b[..]))
            .collect();
        let r = d2.write_blocks(&reqs, IoLane::Foreground);
        let batched: Vec<bool> = (0..bufs.len())
            .map(|i| r.errors.iter().any(|(j, _)| *j == i))
            .collect();
        assert_eq!(per_block, batched, "identical fault schedule either way");
    }

    #[test]
    fn background_batch_with_faults_leaves_foreground_clock_alone() {
        let clock = SimClock::new();
        let inner = SimDisk::new(DiskKind::Ssd, 1024, clock.clone());
        let d = FaultyDisk::new(
            inner,
            FaultPlan::quiet(31)
                .with_bad_range(2..3)
                .with_latency_spikes(1000, 7_000),
        );
        let buf = [5u8; BLOCK_SIZE];
        let reqs: Vec<(u64, &[u8])> = (0..4u64).map(|b| (b, &buf[..])).collect();
        let r = d.write_blocks(&reqs, IoLane::Background);
        assert_eq!(r.errors.len(), 1);
        assert_eq!(
            clock.now_ns(),
            0,
            "background faults must not stall foreground"
        );
        assert_eq!(d.stats().busy_ns, r.device_ns);
    }

    #[test]
    fn latency_spikes_charge_the_clock() {
        let clock = SimClock::new();
        let inner = SimDisk::new(DiskKind::Ssd, 64, clock.clone());
        let d = FaultyDisk::new(
            inner,
            FaultPlan::quiet(6).with_latency_spikes(1000, 5_000_000),
        );
        let mut buf = [0u8; BLOCK_SIZE];
        d.read_block(0, &mut buf).unwrap();
        assert!(clock.now_ns() >= 5_000_000 + 60_000);
        assert_eq!(d.fault_stats().latency_spikes, 1);
    }
}
