// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Property tests of the vectored write path: `write_blocks` must leave
//! the device byte-identical to the equivalent per-block `write_block`
//! loop — for both lanes, and across the sub-batch splits a
//! [`FaultyDisk`] introduces at injected fault boundaries.

use blockdev::{BlockDevice, DiskKind, FaultPlan, FaultyDisk, IoLane, SimDisk, BLOCK_SIZE};
use nvmsim::SimClock;
use proptest::prelude::*;

const NUM_BLOCKS: u64 = 96;

/// One generated request: a target block (deliberately allowed to run a
/// little past the end of the device so out-of-range errors are part of
/// the property) and a payload fill byte.
fn reqs() -> impl Strategy<Value = Vec<(u64, u8)>> {
    prop::collection::vec((0u64..(NUM_BLOCKS + 8), any::<u8>()), 1..48)
}

fn fill(i: usize, b: u8) -> [u8; BLOCK_SIZE] {
    let mut buf = [b; BLOCK_SIZE];
    // Make payloads position-dependent so reordering would be caught.
    buf[0] = i as u8;
    buf
}

/// Reads every in-range block of `d` with injection off.
fn image(d: &dyn BlockDevice) -> Vec<[u8; BLOCK_SIZE]> {
    let mut out = Vec::with_capacity(NUM_BLOCKS as usize);
    let mut buf = [0u8; BLOCK_SIZE];
    for b in 0..NUM_BLOCKS {
        d.read_block(b, &mut buf).expect("in-range read");
        out.push(buf);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plain `SimDisk`: batch ≡ per-block, bytes and error positions.
    #[test]
    fn simdisk_batch_equals_per_block(rs in reqs(), lane_bg in any::<bool>()) {
        let lane = if lane_bg { IoLane::Background } else { IoLane::Foreground };
        let payloads: Vec<[u8; BLOCK_SIZE]> =
            rs.iter().enumerate().map(|(i, (_, b))| fill(i, *b)).collect();

        let batch_disk = SimDisk::new(DiskKind::Ssd, NUM_BLOCKS, SimClock::new());
        let slice: Vec<(u64, &[u8])> = rs
            .iter()
            .zip(&payloads)
            .map(|((blk, _), p)| (*blk, &p[..]))
            .collect();
        let report = batch_disk.write_blocks(&slice, lane);

        let loop_disk = SimDisk::new(DiskKind::Ssd, NUM_BLOCKS, SimClock::new());
        let mut loop_errs = Vec::new();
        for (i, ((blk, _), p)) in rs.iter().zip(&payloads).enumerate() {
            if let Err(e) = loop_disk.write_block(*blk, p) {
                loop_errs.push((i, e));
            }
        }

        prop_assert_eq!(image(&*batch_disk), image(&*loop_disk));
        prop_assert_eq!(report.errors, loop_errs);
        prop_assert_eq!(batch_disk.stats().writes, loop_disk.stats().writes);
        prop_assert_eq!(batch_disk.stats().write_errors, loop_disk.stats().write_errors);
    }

    /// `FaultyDisk`: same seed, same requests → identical bytes and the
    /// identical per-request error schedule, even though the batch path
    /// splits into sub-batches at every injected fault.
    #[test]
    fn faultydisk_batch_equals_per_block(
        rs in reqs(),
        seed in any::<u64>(),
        transient_pm in 0u32..400,
        burst in 1u32..4,
        bad_start in 0u64..NUM_BLOCKS,
        bad_len in 0u64..8,
        lane_bg in any::<bool>(),
    ) {
        let lane = if lane_bg { IoLane::Background } else { IoLane::Foreground };
        let plan = || {
            FaultPlan::quiet(seed)
                .with_transient_writes(transient_pm)
                .with_burst_len(burst)
                .with_bad_range(bad_start..(bad_start + bad_len).min(NUM_BLOCKS))
        };
        let payloads: Vec<[u8; BLOCK_SIZE]> =
            rs.iter().enumerate().map(|(i, (_, b))| fill(i, *b)).collect();

        let batch_disk = FaultyDisk::new(
            SimDisk::new(DiskKind::Hdd, NUM_BLOCKS, SimClock::new()),
            plan(),
        );
        let slice: Vec<(u64, &[u8])> = rs
            .iter()
            .zip(&payloads)
            .map(|((blk, _), p)| (*blk, &p[..]))
            .collect();
        let report = batch_disk.write_blocks(&slice, lane);

        let loop_disk = FaultyDisk::new(
            SimDisk::new(DiskKind::Hdd, NUM_BLOCKS, SimClock::new()),
            plan(),
        );
        let mut loop_errs = Vec::new();
        for (i, ((blk, _), p)) in rs.iter().zip(&payloads).enumerate() {
            if let Err(e) = loop_disk.write_block(*blk, p) {
                loop_errs.push((i, e));
            }
        }

        batch_disk.set_enabled(false);
        loop_disk.set_enabled(false);
        prop_assert_eq!(image(&*batch_disk), image(&*loop_disk));
        prop_assert_eq!(report.errors, loop_errs);
        prop_assert_eq!(batch_disk.fault_stats(), loop_disk.fault_stats());
        prop_assert_eq!(batch_disk.stats().writes, loop_disk.stats().writes);
    }
}
