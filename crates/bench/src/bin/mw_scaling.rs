//! Multi-writer scaling figure: the lock-free intra-shard commit
//! pipeline against the mutex+leader/follower baseline, 1–16 writers on
//! 1- and 4-shard pools, with per-shard + merged persist-order audits
//! and the embedded multi-writer crash campaigns.
//!
//! Usage: `cargo run --release -p bench --bin mw_scaling [-- --quick]`
//!
//! Exits non-zero if any trace has a persist-order violation, if either
//! crash campaign reports a violation, or if the single-shard pipeline
//! fails to reach 2x the mutex throughput at 8 writers.

use bench::figs::mw_scaling;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = mw_scaling::run(quick);
    if !r.persist_clean {
        eprintln!("persist-order violations on the multi-writer commit path");
        std::process::exit(1);
    }
    if !r.fuzz.clean() || !r.frontier.clean() {
        eprintln!("multi-writer crash campaign violations");
        std::process::exit(1);
    }
    if r.speedup_x_8w < 2.0 {
        eprintln!(
            "multi-writer speedup {:.2}x at 8 writers below the 2x bar",
            r.speedup_x_8w
        );
        std::process::exit(1);
    }
}
