//! Regenerates the paper's entire evaluation: every table and figure, in
//! order, writing CSVs to `EXPERIMENTS-results/`.
//!
//! ```text
//! cargo run --release -p bench --bin run_all          # full scaled runs
//! cargo run --release -p bench --bin run_all -- --quick   # smoke sizes
//! ```

use bench::figs;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = Instant::now();
    let done = |name: &str| {
        eprintln!("  [{name} done at {:.1}s]", t0.elapsed().as_secs_f64());
    };
    figs::tables::table1();
    done("table1");
    figs::tables::table2();
    done("table2");
    figs::fig3::fig3a(quick);
    done("fig3a");
    figs::fig3::fig3b(quick);
    done("fig3b");
    figs::fig4::run(quick);
    done("fig4");
    figs::fig7::run(quick);
    done("fig7");
    figs::fig8::run(quick);
    done("fig8");
    figs::fig10::run(quick);
    done("fig10");
    figs::fig11::run(quick);
    done("fig11");
    figs::fig12::fig12a(quick);
    done("fig12a");
    figs::fig12::fig12b(quick);
    done("fig12b");
    figs::fig12::fig12c(quick);
    done("fig12c");
    figs::fig13::run(quick);
    done("fig13");
    figs::ubj_compare::run(quick);
    done("ubj_compare");
    figs::endurance::run(quick);
    done("endurance");
    figs::flush_instr::run(quick);
    done("flush_instr");
    figs::meta_schemes::run(quick);
    done("meta_schemes");
    figs::recoverability::run(quick);
    done("recoverability");
    figs::destage::run(quick);
    done("destage");
    figs::phases::run(quick);
    done("phases");
    figs::persistrace::run(quick);
    done("persistrace");
    figs::spanning::run(quick);
    done("spanning");
    figs::mw_scaling::run(quick);
    done("mw_scaling");
    figs::wal_elim::run(quick);
    done("wal_elim");
    println!(
        "\nAll experiments regenerated in {:.1}s (quick={quick}). CSVs in EXPERIMENTS-results/.",
        t0.elapsed().as_secs_f64()
    );
}
