//! Concurrency-aware persist-order audit of the sharded pool.
//!
//! Runs the multi-threaded scaling workload with NVM event tracing on and
//! feeds every shard's trace — and the pool-wide merged trace — through
//! the `persistcheck` analyzer with the happens-before race rules armed
//! (`persist-race`, `unordered-commit`, `cross-thread-flush-dependency`).
//! The pool's mutex-serialised commit path must come out completely
//! clean; tracing must not move the simulated clock.
//!
//! Usage: `cargo run --release -p bench --bin persistrace [-- --quick]`
//!
//! Exits non-zero on any correctness-rule hit.

use bench::figs::persistrace;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_table, clean) = persistrace::run(quick);
    if !clean {
        eprintln!("correctness violations (incl. race rules) on the pool commit path");
        std::process::exit(1);
    }
}
