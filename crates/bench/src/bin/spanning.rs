//! Spanning-mix figure (cross-shard two-phase commit cost) plus the
//! spanning crash smoke. `--quick` for the CI smoke run.
//!
//! Exits non-zero unless the run shows the protocol behaving: the 0 %
//! point runs at fast-path cost with spanning strictly (but boundedly)
//! dearer, persist-order traces clean per shard and merged, and both
//! crash campaigns — frontier enumeration and random-trip fuzz — free of
//! torn spanning transactions.

use std::process::exit;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = bench::figs::spanning::run(quick);

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("ACCEPTANCE FAIL: {what}");
            failed = true;
        }
    };
    check(
        r.points[0].spanning_txns == 0,
        "the 0% point must run no spanning transaction at all",
    );
    check(
        r.points.iter().skip(1).all(|p| p.spanning_txns > 0),
        "every non-zero mix must actually run spanning transactions",
    );
    check(
        r.overhead_x > 1.0,
        "the two-phase protocol cannot be free: 50% mix must cost more than 0%",
    );
    check(
        r.overhead_x < 8.0,
        "spanning overhead out of hand (fast path regressed or protocol bloated?)",
    );
    check(
        r.persist_clean,
        "persist-order audit must be clean per shard and on the merged trace",
    );
    check(
        r.frontier.clean() && r.frontier.states_run > 0,
        "frontier enumeration must run states and find zero torn spanning txns",
    );
    check(
        r.fuzz.clean() && r.fuzz.crashes > 0,
        "fuzz sweep must crash mid-commit and find zero torn spanning txns",
    );
    if failed {
        exit(1);
    }
    println!("spanning: acceptance checks passed");
}
