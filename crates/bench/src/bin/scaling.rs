//! Scaling figure: sharded-pool throughput and flushes/txn vs threads,
//! with a per-shard persist-order audit of every run.
//!
//! Usage: `cargo run --release -p bench --bin scaling [-- --quick]`
//!
//! Exits non-zero if any shard's commit trace has a persist-order
//! correctness violation, or if the N=4 pool fails to reach 2x the N=1
//! throughput at the highest thread count.

use bench::figs::scaling;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_table, speedup, clean) = scaling::run(quick);
    if !clean {
        eprintln!("persist-order violations on the sharded commit path");
        std::process::exit(1);
    }
    if speedup < 2.0 {
        eprintln!("sharded pool speedup {speedup:.2}x below the 2x bar");
        std::process::exit(1);
    }
}
