//! Latency-under-load knee curve (open-loop tier), Tinca vs
//! Classic+JBD2. `--quick` for the CI smoke run.
//!
//! Exits non-zero unless the run reproduces the paper-level claims:
//! Tinca's knee at a strictly higher offered load than Classic's, p999
//! superlinear past saturation, persist-order traces clean at every
//! load point, and the crash-mid-backlog campaign free of oracle
//! violations.

use std::process::exit;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = bench::figs::latency_load::run(quick);

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("ACCEPTANCE FAIL: {what}");
            failed = true;
        }
    };
    check(
        r.tinca_knee > r.classic_knee,
        "Tinca's knee must sit at strictly higher offered load than Classic+JBD2's",
    );
    check(
        r.classic_knee > 0.0,
        "Classic must keep up at the bottom of the ladder (ladder mis-spanned?)",
    );
    check(
        r.tinca_tail_ratio > 4.0,
        "p999 must rise superlinearly past saturation (knee not visible)",
    );
    check(
        r.persist_clean,
        "persist-order audit must be clean at every load point",
    );
    check(
        r.campaign.clean(),
        "crash-mid-backlog campaign must have zero oracle violations",
    );
    check(
        r.campaign.crashes > 0 && r.campaign.shed > 0,
        "campaign must actually crash mid-backlog (trips fired, ops shed)",
    );
    if failed {
        exit(1);
    }
    println!("latency_load: acceptance checks passed");
}
