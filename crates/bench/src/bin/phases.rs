//! Commit-path phase breakdown (telemetry demo + attribution gate).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    bench::figs::phases::run(quick);
}
