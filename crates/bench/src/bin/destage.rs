//! Write-behind destage ablation. `--quick` shrinks the run for CI.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    bench::figs::destage::run(quick);
}
