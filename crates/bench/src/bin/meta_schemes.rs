//! Regenerates the metadata-scheme comparison. Pass `--quick` for a smoke run.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let _ = figs::meta_schemes::run(quick());
}
