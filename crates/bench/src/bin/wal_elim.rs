//! WAL-elimination figure (kvdb: same TPC-C stream through the WAL and
//! no-WAL personalities) plus both modes' crash smoke. `--quick` for the
//! CI smoke run.
//!
//! Exits non-zero unless the run shows the paper's claim one level up
//! the stack: the no-WAL personality commits faster AND writes fewer
//! device bytes than the WAL-on-journaling-FS personality, on an
//! identical transaction stream, while both personalities survive
//! random-trip fuzz and persist-frontier enumeration with the
//! persist-order audit clean.

use std::process::exit;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = bench::figs::wal_elim::run(quick);

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("ACCEPTANCE FAIL: {what}");
            failed = true;
        }
    };
    // Read-only TPC-C transactions dirty no page, so store commits can be
    // fewer than driver transactions — but the two personalities replay
    // the same seeded stream and must agree exactly.
    check(
        r.wal.txns == r.tinca.txns && r.wal.commits == r.tinca.commits && r.wal.commits > 0,
        "both personalities must commit the same transaction stream",
    );
    check(
        r.speedup_x > 1.0,
        "eliminating the WAL must make commits cheaper, not dearer",
    );
    check(
        r.bytes_ratio_x > 1.0,
        "the WAL route must write more device bytes than the no-WAL route",
    );
    check(
        r.wal.payload_amplification > r.tinca.payload_amplification,
        "write amplification must drop when the journaling-of-journal route goes away",
    );
    check(
        r.wal_fuzz.clean() && r.wal_fuzz.crashes > 0,
        "WAL-mode fuzz must crash mid-commit and recover with zero violations",
    );
    check(
        r.tinca_fuzz.clean() && r.tinca_fuzz.crashes > 0,
        "no-WAL fuzz must crash mid-commit and recover with zero violations",
    );
    check(
        r.wal_frontier.clean() && r.wal_frontier.states_run > 0,
        "WAL-mode frontier enumeration must run states with zero violations",
    );
    check(
        r.tinca_frontier.clean() && r.tinca_frontier.states_run > 0,
        "no-WAL frontier enumeration must run states with zero violations",
    );
    if failed {
        exit(1);
    }
    println!("wal_elim: acceptance checks passed");
}
