//! Regenerates fig7 of the paper. Pass `--quick` for a smoke-sized run.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let _ = figs::fig7::run(quick());
}
