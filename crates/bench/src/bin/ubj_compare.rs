//! Regenerates the §5.4.4 Tinca-vs-UBJ comparison, quantified.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let _ = figs::ubj_compare::run(quick());
}
