//! Regenerates the endurance extension experiment. Pass `--quick` for a smoke run.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let _ = figs::endurance::run(quick());
}
