//! Regenerates the flush_instr extension experiment. Pass `--quick` for a smoke run.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let _ = figs::flush_instr::run(quick());
}
