//! Shadow persist-order analysis of the paper's commit-path workloads.
//!
//! Replays a Fig. 3(b)/Fig. 4-style Fio write workload (random 4 KB
//! writes, periodic fsync — every fsync is a Tinca transaction commit)
//! with NVM event tracing enabled, feeds the trace to the `persistcheck`
//! analyzer, and prints per-system reports: correctness violations
//! (missing-flush / flush-without-fence / torn-update) plus the flush-
//! hygiene lints (redundant clflushes of clean lines, empty sfences).
//!
//! Each system is also run untraced with identical inputs to show that
//! tracing is observation-only: the simulated clock must agree to the
//! nanosecond. Exits non-zero if any correctness violation is found.
//!
//! Usage: `cargo run --release -p bench --bin persistcheck [-- --quick]`

use bench::table::Table;
use bench::{banner, figs::local_cfg, write_csv};
use fssim::stack::{build, StackConfig, System};
use nvmsim::NvmConfig;
use persistcheck::{check, CheckConfig, Report};
use workloads::fio::{Fio, FioSpec};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Runs the commit-path workload on one stack; returns the final
/// simulated time and, when tracing, the analyzer's report.
fn run_one(mut cfg: StackConfig, ops: u64, traced: bool) -> (u64, Option<Report>) {
    if traced {
        let nvm = cfg
            .nvm_override
            .take()
            .unwrap_or_else(|| NvmConfig::new(cfg.nvm_bytes, cfg.nvm_tech));
        cfg.nvm_override = Some(nvm.with_tracing());
    }
    let mut stack = build(&cfg).unwrap();
    let mut fio = Fio::new(FioSpec {
        read_pct: 0,
        file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
        req_bytes: 4096,
        ops,
        fsync_every: 64,
        seed: 0x04,
    });
    fio.setup(&mut stack);
    let _ = fio.run(&mut stack);
    let now = stack.clock.now_ns();
    let report = traced.then(|| {
        let ranges = stack.fs.backend().metadata_ranges();
        check(&stack.nvm.take_trace(), CheckConfig::with_metadata(ranges))
    });
    (now, report)
}

fn main() {
    banner(
        "persistcheck",
        "Persist-order analysis of the commit path (Fio random writes, fsync every 64)",
        "zero correctness violations; batched ring trades fences for staged flushes",
    );
    let quick = quick();
    let ops: u64 = if quick { 2_000 } else { 10_000 };
    let systems = [
        System::Tinca,
        System::TincaNoRoleSwitch,
        System::TincaBatched,
        System::Classic,
        System::Ubj,
    ];
    let mut t = Table::new(&[
        "System",
        "events",
        "commits",
        "violations",
        "redundant clflush",
        "empty sfence",
        "verdict",
    ]);
    let mut failed = false;
    for sys in systems {
        let cfg = local_cfg(sys, quick);
        let (traced_ns, report) = run_one(cfg.clone(), ops, true);
        let (plain_ns, _) = run_one(cfg, ops, false);
        assert_eq!(
            traced_ns,
            plain_ns,
            "{}: tracing changed simulated time",
            sys.name()
        );
        let r = report.unwrap();
        if !r.is_clean() {
            failed = true;
            println!("--- {} ---\n{r}", sys.name());
        }
        t.row(vec![
            sys.name().into(),
            r.events.to_string(),
            r.commits.to_string(),
            r.violations.len().to_string(),
            r.redundant_flushes.to_string(),
            r.empty_fences.to_string(),
            if r.is_clean() {
                "CLEAN".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    t.print();
    write_csv("persistcheck", &t.headers(), t.rows());
    if failed {
        std::process::exit(1);
    }
}
