//! Performance-regression gate over the `phases` bench summary.
//!
//! Compares the `gate` counters of a freshly generated `BENCH_5.json`
//! against a committed baseline and fails (exit 1) if an efficiency
//! counter regressed by more than the tolerance. Counters gated:
//!
//! * `clflush_per_op` — commit-path flush coalescing must keep paying;
//! * `disk_busy_ns`   — destage batching must keep device time down.
//!
//! `commit_total_ns` and `sim_ns` are reported for context but not
//! gated (they move with workload-shape changes that are often
//! intentional). Both files must come from the same mode (`--quick` vs
//! full); the gate refuses to compare across modes.
//!
//! JSON is read by string extraction — the values are numbers written
//! by our own `telemetry::Json`, so no serialization dependency is
//! needed or wanted here.
//!
//! Usage: `cargo run --release -p bench --bin perfgate -- <baseline.json> <new.json>`

use std::process::exit;

/// Maximum tolerated relative increase of a gated counter.
const TOLERANCE: f64 = 0.05;

/// Extracts the flat `"gate":{...}` object body from a BENCH_5 rendering.
fn gate_body(text: &str, path: &str) -> String {
    let start = text
        .find("\"gate\":{")
        .unwrap_or_else(|| panic!("{path}: no \"gate\" object — not a BENCH_5.json?"));
    let body = &text[start + 8..];
    let end = body
        .find('}')
        .unwrap_or_else(|| panic!("{path}: unterminated gate object"));
    body[..end].to_string()
}

/// Reads one numeric field out of a flat JSON object body.
fn field(body: &str, key: &str, path: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{path}: gate counter {key} missing"));
    let rest = &body[start + pat.len()..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{path}: gate counter {key} not numeric: {e}"))
}

/// Reads the top-level `"quick"` flag.
fn quick_flag(text: &str, path: &str) -> bool {
    if text.contains("\"quick\":true") {
        true
    } else if text.contains("\"quick\":false") {
        false
    } else {
        panic!("{path}: no \"quick\" flag")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: perfgate <baseline BENCH_5.json> <new BENCH_5.json>");
        exit(2);
    };
    let read =
        |p: &String| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"));
    let (old_text, new_text) = (read(baseline_path), read(new_path));
    assert_eq!(
        quick_flag(&old_text, baseline_path),
        quick_flag(&new_text, new_path),
        "refusing to compare a --quick run against a full run"
    );
    let (old_gate, new_gate) = (
        gate_body(&old_text, baseline_path),
        gate_body(&new_text, new_path),
    );

    let gated = ["clflush_per_op", "disk_busy_ns"];
    let informational = ["commit_total_ns", "sim_ns"];
    let mut failed = false;
    println!(
        "{:<16} {:>16} {:>16} {:>9}  verdict",
        "counter", "baseline", "new", "delta"
    );
    for key in gated.iter().chain(&informational) {
        let old = field(&old_gate, key, baseline_path);
        let new = field(&new_gate, key, new_path);
        let delta = if old == 0.0 { 0.0 } else { (new - old) / old };
        let is_gated = gated.contains(key);
        let verdict = if !is_gated {
            "info"
        } else if delta > TOLERANCE {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{key:<16} {old:>16.2} {new:>16.2} {:>8.2}%  {verdict}",
            delta * 100.0
        );
    }
    if failed {
        eprintln!(
            "perf regression: a gated counter grew more than {:.0}% over the \
             committed baseline (rerun `phases` and commit BENCH_5.json only \
             if the regression is intended and explained)",
            TOLERANCE * 100.0
        );
        exit(1);
    }
    println!("perfgate: within {:.0}% of baseline", TOLERANCE * 100.0);
}
