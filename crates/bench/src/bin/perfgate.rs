//! Performance-regression gate over the machine-readable bench
//! summaries (`BENCH_5.json` from `phases`, `BENCH_6.json` from
//! `latency_load`, `BENCH_7.json` from `spanning`, `BENCH_8.json` from
//! `wal_elim`).
//!
//! Compares the `gate` counters of a freshly generated summary against a
//! committed baseline and fails (exit 1) on a regression beyond the
//! tolerance. Gating is **direction-aware** — each counter declares
//! which way "worse" points:
//!
//! * `phases` (BENCH_5): `clflush_per_op` and `disk_busy_ns` are
//!   lower-is-better (flush coalescing and destage batching must keep
//!   paying); `commit_total_ns` / `sim_ns` are informational.
//! * `latency_load` (BENCH_6): `tinca_knee_ops_per_sec` is
//!   higher-is-better (the knee must not move down the load axis) and
//!   `tinca_p99_ns_subknee` is lower-is-better (sub-knee tail latency
//!   must not inflate); the `classic_*` twins are informational — the
//!   baseline system's drift is context, not our regression.
//! * `spanning` (BENCH_7): `single_shard_ns_per_txn` is lower-is-better
//!   — the 0 %-spanning point is the plain fast path, and the spanning
//!   machinery must never tax it — as is `spanning50_ns_per_txn`; the
//!   overhead ratio is informational.
//! * `wal_elim` (BENCH_8): `tinca_ns_per_txn` and
//!   `tinca_bytes_per_txn` are lower-is-better (the no-WAL personality
//!   is the one we own end to end); the `wal_*` twins and the two
//!   ratios are informational — the comparison baseline's drift is
//!   context, not our regression.
//!
//! The two files must describe the same bench and the same mode
//! (`--quick` vs full); the gate refuses to compare across either.
//!
//! JSON is read by string extraction — the values are numbers written
//! by our own `telemetry::Json`, so no serialization dependency is
//! needed or wanted here. This requires the `gate` object to stay flat.
//!
//! Usage: `cargo run --release -p bench --bin perfgate -- <baseline.json> <new.json>`

use std::process::exit;

/// Maximum tolerated relative movement of a gated counter in its bad
/// direction.
const TOLERANCE: f64 = 0.05;

/// Which way "worse" points for one gated counter.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Regression = counter grew (cost/latency counters).
    LowerIsBetter,
    /// Regression = counter shrank (throughput/capacity counters).
    HigherIsBetter,
    /// Reported for context, never fails the gate.
    Info,
}

/// The gate schema of each bench summary this tool understands.
fn counters(bench: &str) -> Vec<(&'static str, Direction)> {
    use Direction::*;
    match bench {
        "phases" => vec![
            ("clflush_per_op", LowerIsBetter),
            ("disk_busy_ns", LowerIsBetter),
            ("commit_total_ns", Info),
            ("sim_ns", Info),
        ],
        "latency_load" => vec![
            ("tinca_knee_ops_per_sec", HigherIsBetter),
            ("tinca_p99_ns_subknee", LowerIsBetter),
            ("classic_knee_ops_per_sec", Info),
            ("classic_p99_ns_subknee", Info),
        ],
        "spanning" => vec![
            ("single_shard_ns_per_txn", LowerIsBetter),
            ("spanning50_ns_per_txn", LowerIsBetter),
            ("spanning_overhead_x", Info),
        ],
        "wal_elim" => vec![
            ("tinca_ns_per_txn", LowerIsBetter),
            ("tinca_bytes_per_txn", LowerIsBetter),
            ("wal_ns_per_txn", Info),
            ("wal_bytes_per_txn", Info),
            ("speedup_x", Info),
            ("bytes_ratio_x", Info),
        ],
        "mw_scaling" => vec![
            ("mw_speedup_x_8w", HigherIsBetter),
            ("mw_ns_per_txn_1w", LowerIsBetter),
            ("mutex_ns_per_txn_8w", Info),
            ("mw_ns_per_txn_8w", Info),
        ],
        other => panic!("unknown bench {other:?} — teach perfgate its gate schema"),
    }
}

/// Extracts the flat `"gate":{...}` object body from a bench summary.
fn gate_body(text: &str, path: &str) -> String {
    let start = text
        .find("\"gate\":{")
        .unwrap_or_else(|| panic!("{path}: no \"gate\" object — not a BENCH_N.json?"));
    let body = &text[start + 8..];
    let end = body
        .find('}')
        .unwrap_or_else(|| panic!("{path}: unterminated gate object"));
    body[..end].to_string()
}

/// Reads one numeric field out of a flat JSON object body.
fn field(body: &str, key: &str, path: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{path}: gate counter {key} missing"));
    let rest = &body[start + pat.len()..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{path}: gate counter {key} not numeric: {e}"))
}

/// Reads the top-level `"bench"` name.
fn bench_name(text: &str, path: &str) -> String {
    let pat = "\"bench\":\"";
    let start = text
        .find(pat)
        .unwrap_or_else(|| panic!("{path}: no \"bench\" name"));
    let rest = &text[start + pat.len()..];
    let end = rest
        .find('"')
        .unwrap_or_else(|| panic!("{path}: unterminated bench name"));
    rest[..end].to_string()
}

/// Reads the top-level `"quick"` flag.
fn quick_flag(text: &str, path: &str) -> bool {
    if text.contains("\"quick\":true") {
        true
    } else if text.contains("\"quick\":false") {
        false
    } else {
        panic!("{path}: no \"quick\" flag")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: perfgate <baseline BENCH_N.json> <new BENCH_N.json>");
        exit(2);
    };
    let read =
        |p: &String| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"));
    let (old_text, new_text) = (read(baseline_path), read(new_path));
    let bench = bench_name(&old_text, baseline_path);
    assert_eq!(
        bench,
        bench_name(&new_text, new_path),
        "refusing to compare different benches"
    );
    assert_eq!(
        quick_flag(&old_text, baseline_path),
        quick_flag(&new_text, new_path),
        "refusing to compare a --quick run against a full run"
    );
    let (old_gate, new_gate) = (
        gate_body(&old_text, baseline_path),
        gate_body(&new_text, new_path),
    );

    let mut failed = false;
    println!("bench: {bench}");
    println!(
        "{:<24} {:>16} {:>16} {:>9}  verdict",
        "counter", "baseline", "new", "delta"
    );
    for (key, dir) in counters(&bench) {
        let old = field(&old_gate, key, baseline_path);
        let new = field(&new_gate, key, new_path);
        let delta = if old == 0.0 { 0.0 } else { (new - old) / old };
        let verdict = match dir {
            Direction::Info => "info",
            Direction::LowerIsBetter if delta > TOLERANCE => {
                failed = true;
                "FAIL"
            }
            Direction::HigherIsBetter if delta < -TOLERANCE => {
                failed = true;
                "FAIL"
            }
            _ => "ok",
        };
        println!(
            "{key:<24} {old:>16.2} {new:>16.2} {:>8.2}%  {verdict}",
            delta * 100.0
        );
    }
    if failed {
        eprintln!(
            "perf regression: a gated counter moved more than {:.0}% in its bad \
             direction (rerun the bench and commit the new BENCH_N.json only \
             if the regression is intended and explained)",
            TOLERANCE * 100.0
        );
        exit(1);
    }
    println!("perfgate: within {:.0}% of baseline", TOLERANCE * 100.0);
}
