//! Regenerates Table 1 of the paper (NVM technology parameters).
use bench::figs;

fn main() {
    let _ = figs::tables::table1();
}
