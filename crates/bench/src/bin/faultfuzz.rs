//! Crash+fault fuzz campaign and degraded-mode figure. Pass `--quick` for
//! a smoke-sized run; exits non-zero on any violation.
use bench::figs;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn main() {
    let (_, clean) = figs::degraded::run(quick());
    if !clean {
        std::process::exit(1);
    }
}
