//! Regenerates Table 2 of the paper (benchmark roster).
use bench::figs;

fn main() {
    let _ = figs::tables::table2();
}
