//! # bench — the figure/table harnesses of the paper's evaluation (§5)
//!
//! Every table and figure of the evaluation has a module in [`figs`] whose
//! `run(quick)` regenerates its rows/series from the simulated stacks, and
//! a thin binary in `src/bin/` wrapping it (`cargo run --release -p bench
//! --bin fig7`). `run_all` executes the whole evaluation and writes CSVs
//! under `EXPERIMENTS-results/`.
//!
//! `quick = true` shrinks datasets/op counts for CI-speed smoke runs; the
//! default sizes are the ÷128-scaled configuration documented in
//! `DESIGN.md` (shape reproduction, not absolute numbers).

pub mod figs;
pub mod table;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory where `run_all` leaves machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("EXPERIMENTS-results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes one CSV file of results.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    eprintln!("  [csv] {}", path.display());
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, paper_expectation: &str) {
    println!("==========================================================================");
    println!("{id}: {what}");
    println!("  paper: {paper_expectation}");
    println!("==========================================================================");
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
