//! # bench — the figure/table harnesses of the paper's evaluation (§5)
//!
//! Every table and figure of the evaluation has a module in [`figs`] whose
//! `run(quick)` regenerates its rows/series from the simulated stacks, and
//! a thin binary in `src/bin/` wrapping it (`cargo run --release -p bench
//! --bin fig7`). `run_all` executes the whole evaluation and writes CSVs
//! under `EXPERIMENTS-results/`.
//!
//! `quick = true` shrinks datasets/op counts for CI-speed smoke runs; the
//! default sizes are the ÷128-scaled configuration documented in
//! `DESIGN.md` (shape reproduction, not absolute numbers).

pub mod figs;
pub mod table;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory where `run_all` leaves machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("EXPERIMENTS-results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes one CSV file of results, plus its machine-readable JSON
/// companion (same name, `.json` extension — see [`write_json`]).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    eprintln!("  [csv] {}", path.display());
    write_json(name, headers, rows);
}

/// Writes the JSON companion of one result set: an object carrying the
/// figure name, column headers, and rows (cells as strings, exactly as
/// the CSV renders them), so downstream tooling never re-parses CSV.
pub fn write_json(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    use telemetry::Json;
    let json = Json::obj(vec![
        ("figure", name.into()),
        (
            "headers",
            Json::Arr(headers.iter().map(|h| (*h).into()).collect()),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        ),
    ]);
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, json.render()).expect("write json");
    eprintln!("  [json] {}", path.display());
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, paper_expectation: &str) {
    println!("==========================================================================");
    println!("{id}: {what}");
    println!("  paper: {paper_expectation}");
    println!("==========================================================================");
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
