//! Minimal aligned-column table printer for harness output.

/// A simple text table: headers plus string rows, printed with aligned
/// columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Column widths for alignment.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    pub fn print(&self) {
        let w = self.widths();
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", c, width = w[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            w.iter().map(|n| "-".repeat(*n + 2)).collect::<String>()
        );
        for row in &self.rows {
            line(row);
        }
        println!();
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    pub fn headers(&self) -> Vec<&str> {
        self.headers.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_and_stores() {
        let mut t = Table::new(&["a", "metric"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["100".into(), "3".into()]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.headers(), vec!["a", "metric"]);
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
