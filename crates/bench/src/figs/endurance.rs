//! NVM endurance — the paper's lifetime motivation, quantified (§1/§3.1:
//! "double writes adversely affect the lifetime of NVM cache" given PCM's
//! 10^6–10^8 write endurance, Table 1).
//!
//! Runs the same Fio write workload on Classic, Tinca, and the
//! role-switch-disabled ablation, and reports media writes per op, the
//! device-wide wear hotspot, and the projected lifetime of the *payload
//! area* on a 10^6-cycle PCM. The device-wide hotspot exposes something
//! the paper does not discuss: Tinca's persistent ring `Head`/`Tail`
//! pointer lines take one media write per committed block and dominate
//! un-levelled wear.

use fssim::stack::{build, System};
use fssim::{ClassicBackend, TincaBackend};
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

pub fn run(quick: bool) -> Table {
    banner(
        "Endurance (§1/§3.1)",
        "NVM media writes per op, wear hotspots, projected PCM payload lifetime",
        "double writes roughly halve payload lifetime; fine-grained metadata avoids meta-block wear",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let mut t = Table::new(&[
        "System",
        "media lines/op",
        "mean wear",
        "max wear (all)",
        "max wear (payload)",
        "payload lifetime @1e6",
    ]);
    let mut rows: Vec<(String, f64)> = Vec::new();
    for sys in [System::Classic, System::TincaNoRoleSwitch, System::Tinca] {
        let cfg = local_cfg(sys, quick);
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0xED0,
        });
        fio.setup(&mut stack);
        let wear0 = stack.nvm.wear_summary();
        let _ = fio.run(&mut stack);
        let wear = stack.nvm.wear_summary();
        // Payload region: the cache's data-block area, past the pointer /
        // ring / entry metadata whose fixed lines are intrinsically hot.
        let data_off = stack
            .fs
            .backend()
            .as_any()
            .downcast_ref::<TincaBackend>()
            .map(|b| b.cache.layout().data_off)
            .or_else(|| {
                stack
                    .fs
                    .backend()
                    .as_any()
                    .downcast_ref::<ClassicBackend>()
                    .map(|b| b.cache.layout().data_off)
            })
            .unwrap_or(0);
        let payload = stack.nvm.wear_summary_range(data_off, cfg.nvm_bytes);
        let lines_per_op = (wear.total_line_writes - wear0.total_line_writes) as f64
            / fio.write_ops().max(1) as f64;
        let lifetime = payload.lifetime_device_writes(1_000_000);
        rows.push((sys.name().into(), lifetime));
        t.row(vec![
            sys.name().into(),
            fmt(lines_per_op),
            fmt(wear.mean_line_writes()),
            wear.max_line_writes.to_string(),
            payload.max_line_writes.to_string(),
            fmt(lifetime),
        ]);
    }
    t.print();
    if let (Some(classic), Some(tinca)) = (
        rows.iter().find(|(n, _)| n == "Classic"),
        rows.iter().find(|(n, _)| n == "Tinca"),
    ) {
        println!(
            "  payload lifetime ratio Tinca/Classic: {:.2}x",
            tinca.1 / classic.1
        );
        println!("  note: counting ALL lines, Tinca's ring Head/Tail pointer lines are the wear");
        println!("  hotspot (one media write per committed block) — the paper keeps them at fixed");
        println!("  NVM addresses; a deployment would wear-level that cache line.");
    }
    write_csv("endurance", &t.headers(), t.rows());
    t
}
