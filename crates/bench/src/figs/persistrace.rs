//! persistrace figure — concurrency-aware persist-order audit of the
//! sharded pool under multi-threaded load.
//!
//! Runs the scaling workload (multi-threaded Fio over a sharded
//! [`TincaPool`]) with NVM event tracing on, then audits the traces with
//! the full `persistcheck` rule set, including the happens-before race
//! rules (`persist-race`, `unordered-commit`,
//! `cross-thread-flush-dependency`). Two views per point:
//!
//! * **per shard** — each device's trace in true device order (the device
//!   mutex serialises its events);
//! * **merged** — all shard traces rebased into one pool-wide address
//!   space via [`nvmsim::merge_shard_traces`], analysed as a single
//!   stream.
//!
//! The pool's commit path is mutex-serialised and annotates its locks and
//! the group-commit result handoff as sync events, so the gate is strict:
//! **zero** correctness-rule hits (the classic three *and* the three race
//! rules) in either view. A single missing happens-before edge — say the
//! leader publishing results before its fence, or a destage racing a
//! commit — fails the bin.
//!
//! Tracing neutrality is asserted on the deterministic single-thread
//! points: the same workload untraced must land on the same simulated
//! clock, nanosecond for nanosecond.

use std::fs;

use blockdev::{DiskKind, SimDisk};
use nvmsim::{merge_shard_traces, shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker, Report, Rule};
use telemetry::Json;
use tinca::{PoolConfig, TincaConfig, TincaPool};
use workloads::mtfio::{MtFio, MtFioSpec};

use crate::table::Table;
use crate::{banner, results_dir, write_csv};

/// One audited (shards, threads) point.
pub struct RacePoint {
    pub shards: usize,
    pub threads: usize,
    /// Pool-wide merged-trace report.
    pub merged: Report,
    /// Sync annotation events in the merged trace.
    pub sync_events: u64,
    /// Correctness-rule hits summed over both views (gate).
    pub correctness: usize,
}

fn build_pool(shards: usize, nvm_bytes: usize, traced: bool) -> (TincaPool, Vec<Nvm>) {
    let mut nvm_cfg = NvmConfig::new(nvm_bytes, NvmTech::Pcm);
    if traced {
        nvm_cfg = nvm_cfg.with_tracing();
    }
    let devices = shard_devices(&nvm_cfg, shards);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let pool = TincaPool::format(
        devices.clone(),
        disk,
        PoolConfig {
            shards,
            cache: TincaConfig {
                ring_bytes: 16 << 10,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, devices)
}

fn spec(shards: usize, threads: usize, quick: bool) -> MtFioSpec {
    MtFioSpec {
        threads,
        read_pct: 30,
        blocks: if quick { 512 } else { 2048 },
        ops_per_thread: if quick { 250 } else { 1000 },
        txn_blocks: 2,
        seed: 0xACED + shards as u64,
    }
}

fn run_workload(pool: &TincaPool, shards: usize, threads: usize, quick: bool) {
    let fio = MtFio::new(spec(shards, threads, quick));
    fio.setup(pool, if quick { 64 } else { 256 });
    fio.run(pool);
    pool.flush_all().expect("fault-free flush");
}

fn correctness_hits(r: &Report) -> usize {
    r.violations
        .iter()
        .filter(|v| v.rule.is_correctness())
        .count()
}

/// Runs one point and audits it per shard and merged.
pub fn audit_point(shards: usize, threads: usize, quick: bool) -> RacePoint {
    let nvm_bytes = if quick { 4 << 20 } else { 16 << 20 };
    let (pool, devices) = build_pool(shards, nvm_bytes, true);
    run_workload(&pool, shards, threads, quick);

    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    let shard_capacity = devices[0].capacity();

    let mut correctness = 0usize;
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(pool.shard_metadata_ranges(s)));
        checker.push_all(trace);
        let r = checker.report();
        let hits = correctness_hits(&r);
        if hits > 0 {
            eprintln!("--- shard {s} ({shards} shards, {threads} threads) ---\n{r}");
        }
        correctness += hits;
    }

    // Pool-wide view: rebase every shard trace into the pool address
    // space and analyse the deterministic merged stream. Metadata ranges
    // shift with the same per-shard base as the addresses.
    let merged_trace = merge_shard_traces(traces, shard_capacity);
    let sync_events = merged_trace.iter().filter(|op| op.event.is_sync()).count() as u64;
    let merged_ranges: Vec<_> = (0..shards)
        .flat_map(|s| {
            let base = s * shard_capacity;
            pool.shard_metadata_ranges(s)
                .into_iter()
                .map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merged_trace);
    let merged = checker.report();
    let hits = correctness_hits(&merged);
    if hits > 0 {
        eprintln!("--- merged ({shards} shards, {threads} threads) ---\n{merged}");
    }
    correctness += hits;

    RacePoint {
        shards,
        threads,
        merged,
        sync_events,
        correctness,
    }
}

/// Asserts tracing is observation-only on the deterministic single-thread
/// workload: traced and untraced runs must agree on every shard clock.
fn assert_tracing_neutral(shards: usize, quick: bool) {
    let nvm_bytes = if quick { 4 << 20 } else { 16 << 20 };
    let clocks = |traced: bool| -> Vec<u64> {
        let (pool, devices) = build_pool(shards, nvm_bytes, traced);
        run_workload(&pool, shards, 1, quick);
        devices.iter().map(|d| d.clock().now_ns()).collect()
    };
    assert_eq!(
        clocks(true),
        clocks(false),
        "{shards}-shard pool: tracing changed simulated time"
    );
}

/// Runs the full figure. Returns `(table, clean)`; `clean` is true iff no
/// correctness rule (including the race rules) fired in any view.
pub fn run(quick: bool) -> (Table, bool) {
    banner(
        "persistrace",
        "Concurrency-aware persist audit: HB race rules over the sharded pool",
        "zero correctness hits (incl. persist-race/unordered-commit) on the mutex-serialized path",
    );
    let points: &[(usize, usize)] = if quick {
        &[(1, 1), (2, 4)]
    } else {
        &[(1, 1), (1, 4), (2, 4), (4, 8)]
    };
    let mut t = Table::new(&[
        "shards",
        "threads",
        "events",
        "sync events",
        "persist-race",
        "unordered-commit",
        "cross-thread-flush",
        "correctness",
        "lints",
        "verdict",
    ]);
    let mut clean = true;
    let mut json_points = Vec::new();
    for &(shards, threads) in points {
        let p = audit_point(shards, threads, quick);
        clean &= p.correctness == 0;
        let r = &p.merged;
        t.row(vec![
            shards.to_string(),
            threads.to_string(),
            r.events.to_string(),
            p.sync_events.to_string(),
            r.count(Rule::PersistRace).to_string(),
            r.count(Rule::UnorderedCommit).to_string(),
            r.count(Rule::CrossThreadFlushDependency).to_string(),
            p.correctness.to_string(),
            (r.redundant_flushes + r.empty_fences).to_string(),
            if p.correctness == 0 {
                "CLEAN".into()
            } else {
                "FAIL".into()
            },
        ]);
        json_points.push(Json::obj(vec![
            ("shards", (shards as u64).into()),
            ("threads", (threads as u64).into()),
            ("sync_events", p.sync_events.into()),
            ("merged", r.to_json()),
        ]));
    }
    for &shards in &[1usize, 4] {
        assert_tracing_neutral(shards, quick);
    }
    println!("tracing neutrality: traced == untraced simulated clocks (1 and 4 shards)");
    t.print();
    write_csv("persistrace", &t.headers(), t.rows());
    let out = Json::obj(vec![
        ("bench", "persistrace".into()),
        ("quick", quick.into()),
        ("points", Json::Arr(json_points)),
    ]);
    // `write_csv` owns `persistrace.json` (the table view); the full
    // per-point persistcheck reports go to a sibling file.
    let path = results_dir().join("persistrace.report.json");
    fs::write(&path, out.render()).expect("write persistrace.json");
    eprintln!("  [json] {}", path.display());
    (t, clean)
}
