//! Figure 7 — Fio micro-benchmark, Classic vs Tinca (§5.2.1).

use fssim::stack::{build, System};
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Fio at R/W 3/7, 5/5, 7/3: write IOPS (a), clflush per write op (b),
/// disk blocks written per write op (c). Paper: Tinca 2.5×/2.1×/1.7×
/// IOPS, ≈ 73–76 % fewer clflush, ≈ 60–65 % fewer disk writes.
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 7",
        "Fio R/W mixes: write IOPS, clflush/op, disk writes/op",
        "Tinca 2.5x/2.1x/1.7x IOPS; -73..76% clflush; -60..65% disk writes",
    );
    let ops: u64 = if quick { 6_000 } else { 30_000 };
    let mut t = Table::new(&[
        "R/W",
        "System",
        "write IOPS",
        "clflush/op",
        "disk wr/op",
        "IOPS ratio",
    ]);
    for read_pct in [30u32, 50, 70] {
        let mut iops = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let cfg = local_cfg(sys, quick);
            let mut stack = build(&cfg).unwrap();
            let mut fio = Fio::new(FioSpec {
                read_pct,
                file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
                req_bytes: 4096,
                ops,
                fsync_every: 64,
                seed: 0x07,
            });
            fio.setup(&mut stack);
            let r = fio.run(&mut stack);
            iops.push(r.ops_per_sec());
            let ratio = if iops.len() == 2 {
                format!("{:.2}x", iops[1] / iops[0])
            } else {
                String::new()
            };
            t.row(vec![
                format!("{}/{}", read_pct / 10, 10 - read_pct / 10),
                sys.name().into(),
                fmt(r.ops_per_sec()),
                fmt(r.clflush_per_op()),
                fmt(r.disk_writes_per_op()),
                ratio,
            ]);
        }
    }
    t.print();
    write_csv("fig7", &t.headers(), t.rows());
    t
}
