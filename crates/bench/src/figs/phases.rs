//! Commit-path phase breakdown — where every simulated nanosecond of a
//! Tinca commit goes (telemetry subsystem demo + acceptance gate).
//!
//! Runs a seeded mixed workload against a bare [`TincaCache`] with the
//! telemetry recorder armed, prints the phase tree, and writes:
//!
//! * `EXPERIMENTS-results/phases.csv` / `.json` — top-level phase totals;
//! * `EXPERIMENTS-results/phases.jsonl` — the full JSONL event stream;
//! * `EXPERIMENTS-results/phases.trace.json` — chrome://tracing file;
//! * `BENCH_5.json` (repo root) — machine-readable summary: attribution
//!   fraction, phase tree, histograms, the unified [`StatsSnapshot`],
//!   and a flat `gate` object of per-op efficiency counters that the
//!   `perfgate` bin diffs against the committed baseline in CI.
//!
//! The run asserts that ≥ 95 % of simulated commit-path time is
//! attributed to named child phases (`commit` self time ≤ 5 %) — the
//! instrumentation-coverage gate for the commit protocol.

use std::fs;

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::Json;
use tinca::{StatsSnapshot, TincaCache, TincaConfig};

use crate::table::Table;
use crate::{banner, fmt, results_dir, write_csv};

/// Minimum fraction of commit-path simulated time that must land in named
/// child phases.
pub const MIN_ATTRIBUTED: f64 = 0.95;

/// Runs the breakdown; returns the attributed fraction of `commit` time.
pub fn run(quick: bool) -> f64 {
    banner(
        "Phases",
        "Commit-path phase breakdown (simulated-time telemetry)",
        "every commit-path ns attributed: stage / entry / ring / commit point / write-through",
    );
    let ops: u64 = if quick { 2_000 } else { 10_000 };
    let nvm_bytes = if quick { 2 << 20 } else { 4 << 20 };

    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(nvm_bytes, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
    let cfg = TincaConfig {
        ring_bytes: 4096,
        // The gate protects the optimised commit path: write-behind
        // destage + flush coalescing, as the local figures run it.
        destage: true,
        coalesce_flushes: true,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm, disk, cfg.clone());
    // 2.5× the cache's block capacity so evictions and writebacks appear
    // in the tree alongside the commit protocol itself.
    let span_blocks = cache.data_block_count() as u64 * 5 / 2;

    let (snapshot, report) = telemetry::record(&clock, telemetry::Config::with_events(), || {
        let mut rng = StdRng::seed_from_u64(0x9E57);
        for _ in 0..ops {
            if rng.gen_bool(0.3) {
                let mut buf = [0u8; BLOCK_SIZE];
                let blk = rng.gen_range(0..span_blocks);
                cache.read(blk, &mut buf).expect("fault-free read");
            } else {
                let mut txn = cache.init_txn();
                for _ in 0..rng.gen_range(1..=4u32) {
                    let blk = rng.gen_range(0..span_blocks);
                    txn.write(blk, &[blk as u8; BLOCK_SIZE]);
                }
                cache.commit(&txn).expect("fault-free commit");
            }
        }
        cache.flush_all().expect("fault-free flush");
        // Reopen from NVM so recovery shows up in the phase tree too.
        let (nvm, disk) = (cache.nvm().clone(), cache.disk().clone());
        cache = TincaCache::recover(nvm, disk, cfg).expect("recover");
        StatsSnapshot::collect(&cache)
    });

    println!("{}", report.phase_report());

    let frac = report
        .attributed_fraction("commit")
        .expect("workload ran commits");
    println!(
        "commit-path attribution: {:.2}% of {} simulated ns in named phases",
        frac * 100.0,
        report.find("commit").map_or(0, |p| p.total_ns),
    );
    assert!(
        frac >= MIN_ATTRIBUTED,
        "only {:.2}% of commit-path time attributed (< {:.0}%) — \
         a commit-path charge point lost its span",
        frac * 100.0,
        MIN_ATTRIBUTED * 100.0
    );

    // Top-level phases as a table/CSV like every other figure.
    let mut t = Table::new(&["Phase", "total ns", "count", "share %"]);
    let total: u64 = report.total_ns.max(1);
    for p in report.phases.iter().filter(|p| p.parent == Some(0)) {
        t.row(vec![
            p.name.clone(),
            p.total_ns.to_string(),
            p.count.to_string(),
            fmt(p.total_ns as f64 / total as f64 * 100.0),
        ]);
    }
    t.print();
    write_csv("phases", &t.headers(), t.rows());

    // Flush-hygiene smells per commit phase: the device marks every
    // clflush of an already-clean line and every sfence that found
    // nothing staged (count-only — no simulated time), so wasted persist
    // instructions show up under the exact phase that issued them.
    let mut clean_flushes = 0u64;
    let mut empty_fences = 0u64;
    let mut smells = Table::new(&["Phase", "smell", "count"]);
    for p in &report.phases {
        let smell = match p.name.as_str() {
            telemetry::phase::NVM_FLUSH_CLEAN => {
                clean_flushes += p.count;
                "clean-line clflush"
            }
            telemetry::phase::NVM_FENCE_EMPTY => {
                empty_fences += p.count;
                "empty sfence"
            }
            _ => continue,
        };
        let parent = p
            .parent
            .map_or("(root)".to_string(), |i| report.phases[i].path.clone());
        smells.row(vec![parent, smell.into(), p.count.to_string()]);
    }
    println!(
        "flush-hygiene smells: {clean_flushes} clean-line clflush, {empty_fences} empty sfence"
    );
    if !smells.rows().is_empty() {
        smells.print();
    }
    write_csv("phases_smells", &smells.headers(), smells.rows());

    // Exporters: full event stream + chrome trace.
    let dir = results_dir();
    fs::write(dir.join("phases.jsonl"), report.to_jsonl()).expect("write jsonl");
    fs::write(dir.join("phases.trace.json"), report.to_chrome_trace()).expect("write trace");
    eprintln!("  [jsonl] {}", dir.join("phases.jsonl").display());
    eprintln!("  [trace] {}", dir.join("phases.trace.json").display());

    // BENCH_5.json: the machine-readable bench result at the repo root.
    // The flat `gate` counters are what `perfgate` diffs in CI — keep
    // their names stable (string-extraction parsing, no serde).
    let commit_ns = report.find("commit").map_or(0, |p| p.total_ns);
    let gate = Json::obj(vec![
        (
            "clflush_per_op",
            (snapshot.nvm.clflush as f64 / ops as f64).into(),
        ),
        ("disk_busy_ns", snapshot.disk.busy_ns.into()),
        ("commit_total_ns", commit_ns.into()),
        ("sim_ns", snapshot.sim_ns.into()),
    ]);
    let smell_totals = Json::obj(vec![
        ("clean_line_clflush", clean_flushes.into()),
        ("empty_sfence", empty_fences.into()),
    ]);
    let bench = Json::obj(vec![
        ("bench", "phases".into()),
        ("quick", quick.into()),
        ("ops", ops.into()),
        ("attributed_fraction_commit", frac.into()),
        ("min_attributed", MIN_ATTRIBUTED.into()),
        ("flush_smells", smell_totals),
        ("gate", gate),
        ("stats", snapshot.to_json()),
        ("telemetry", report.to_json()),
    ]);
    let root = dir.parent().expect("results dir sits in the repo root");
    let path = root.join("BENCH_5.json");
    fs::write(&path, bench.render()).expect("write BENCH_5.json");
    eprintln!("  [bench] {}", path.display());

    frac
}
