//! Write-behind destage ablation — the pipeline's contribution, isolated.
//!
//! Runs the Fig. 7 write-heavy Fio workload (R/W 3/7, fsync every 64)
//! on the Tinca stack with the write-behind pipeline (watermark destage
//! daemon + commit-path flush coalescing) off and on, over SSD and HDD,
//! with the telemetry recorder armed. Reports throughput, the `commit`
//! phase total, destage counters, and the flushes coalescing elided.
//!
//! Acceptance gate: on SSD the foreground `commit` phase total must
//! drop by at least [`MIN_COMMIT_DROP`] with the pipeline on — batched,
//! address-sorted background writeback is supposed to take synchronous
//! victim writebacks off the allocation path, not merely relabel them.

use blockdev::DiskKind;
use fssim::stack::{build, System};
use fssim::TincaBackend;
use tinca::StatsSnapshot;
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Minimum relative reduction of the `commit` phase total (SSD).
pub const MIN_COMMIT_DROP: f64 = 0.20;

struct RunResult {
    iops: f64,
    commit_ns: u64,
    snapshot: StatsSnapshot,
}

fn run_one(kind: DiskKind, destage: bool, quick: bool, ops: u64) -> RunResult {
    let mut cfg = local_cfg(System::Tinca, quick);
    cfg.disk_kind = kind;
    cfg.destage = destage;
    let mut stack = build(&cfg).unwrap();
    let clock = stack.clock.clone();
    let mut fio = Fio::new(FioSpec {
        read_pct: 30,
        file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
        req_bytes: 4096,
        ops,
        fsync_every: 64,
        seed: 0x07,
    });
    fio.setup(&mut stack);
    let (r, report) =
        telemetry::record(&clock, telemetry::Config::default(), || fio.run(&mut stack));
    let tb = stack
        .fs
        .backend()
        .as_any()
        .downcast_ref::<TincaBackend>()
        .expect("Tinca stack");
    // `commit` nests under `fs.op` in a full stack; sum every node of
    // that name wherever it appears in the tree.
    let commit_ns = report
        .phases
        .iter()
        .filter(|p| p.name == telemetry::phase::COMMIT)
        .map(|p| p.total_ns)
        .sum();
    RunResult {
        iops: r.ops_per_sec(),
        commit_ns,
        snapshot: StatsSnapshot::collect(&tb.cache),
    }
}

/// Runs the ablation; returns the SSD commit-phase reduction fraction.
pub fn run(quick: bool) -> f64 {
    banner(
        "Destage",
        "Write-behind pipeline ablation: Fio 3/7 write-heavy, destage+coalescing off vs on",
        "batched background writeback takes evictions off the commit path (>=20% on SSD)",
    );
    let ops: u64 = if quick { 6_000 } else { 30_000 };
    let mut t = Table::new(&[
        "Disk",
        "Pipeline",
        "IOPS",
        "commit ms",
        "destage blk",
        "stalls",
        "coalesced",
        "commit drop",
    ]);
    let mut ssd_drop = 0.0;
    for kind in [DiskKind::Ssd, DiskKind::Hdd] {
        let off = run_one(kind, false, quick, ops);
        let on = run_one(kind, true, quick, ops);
        let drop = 1.0 - on.commit_ns as f64 / off.commit_ns.max(1) as f64;
        if kind == DiskKind::Ssd {
            ssd_drop = drop;
        }
        for (label, r, d) in [("off", &off, None), ("on", &on, Some(drop))] {
            let c = &r.snapshot.cache;
            t.row(vec![
                format!("{kind:?}").to_uppercase(),
                label.into(),
                fmt(r.iops),
                fmt(r.commit_ns as f64 / 1e6),
                c.destage_blocks.to_string(),
                c.destage_stalls.to_string(),
                c.coalesced_flushes.to_string(),
                d.map_or(String::new(), |d| format!("{:.1}%", d * 100.0)),
            ]);
        }
    }
    t.print();
    write_csv("destage", &t.headers(), t.rows());
    assert!(
        ssd_drop >= MIN_COMMIT_DROP,
        "destage cut the SSD commit phase by only {:.1}% (< {:.0}%)",
        ssd_drop * 100.0,
        MIN_COMMIT_DROP * 100.0
    );
    ssd_drop
}
