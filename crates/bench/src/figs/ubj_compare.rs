//! §5.4.4 — the Tinca vs UBJ comparison, quantified.
//!
//! The paper argues three structural differences (architecture, the
//! `memcpy`-on-critical-path for frozen blocks, transaction-unit
//! checkpointing) but shows no figure; this harness measures all three on
//! the same Fio write workload over identical devices.

use fssim::stack::{build, System};
use fssim::UbjBackend;
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

pub fn run(quick: bool) -> Table {
    banner(
        "§5.4.4",
        "Tinca vs UBJ: throughput, frozen-block memcpy cost, checkpoint stalls",
        "Tinca avoids UBJ's critical-path memcpy and per-transaction checkpoint stalls",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let mut t = Table::new(&[
        "System",
        "write IOPS",
        "clflush/op",
        "frozen memcpys",
        "memcpy MB",
        "ckpt stalls",
        "stall ms total",
    ]);
    for sys in [System::Ubj, System::Tinca] {
        let cfg = local_cfg(sys, quick);
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0x544,
        });
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        // UBJ-specific counters, where applicable.
        let (copies, copy_mb, ckpts, stall_ms) = stack
            .fs
            .backend()
            .as_any()
            .downcast_ref::<UbjBackend>()
            .map(|ubj| {
                let s = ubj.cache.stats();
                (
                    s.frozen_copies,
                    s.frozen_copy_bytes as f64 / (1 << 20) as f64,
                    s.checkpoints,
                    s.checkpoint_stall_ns as f64 / 1e6,
                )
            })
            .unwrap_or((0, 0.0, 0, 0.0));
        t.row(vec![
            sys.name().into(),
            fmt(r.ops_per_sec()),
            fmt(r.clflush_per_op()),
            copies.to_string(),
            fmt(copy_mb),
            ckpts.to_string(),
            fmt(stall_ms),
        ]);
    }
    t.print();
    write_csv("ubj_compare", &t.headers(), t.rows());
    t
}
