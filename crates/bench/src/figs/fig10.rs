//! Figure 10 — TeraGen on the HDFS-like cluster, 1–3 replicas (§5.3.1).

use cluster::HdfsCluster;
use fssim::stack::System;

use crate::figs::cluster_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Execution time (a), clflush per MB (b), disk blocks per MB (c) for
/// replicas 1, 2, 3 on four data nodes. Paper: Tinca 29 %/54 %/60 % less
/// time at 1/2/3 replicas — the gap widens with replication; ≈ 80 % fewer
/// clflush and ≈ 38 % fewer disk writes at 3 replicas.
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 10",
        "TeraGen on HDFS (4 data nodes): time, clflush/MB, disk writes/MB vs replicas",
        "Tinca saves 29%/54%/60% time at r=1/2/3; gap widens with replication",
    );

    let mut t = Table::new(&[
        "Replicas",
        "System",
        "time (s)",
        "clflush/MB",
        "disk wr/MB",
        "time saved",
    ]);
    for replicas in [1usize, 2, 3] {
        let mut secs = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let cfg = cluster_cfg(sys, quick);
            // Per-node volume ≈ replicas × node cache: pressure (and with
            // it the double-write penalty) grows with the replica count,
            // which is what widens the gap in the paper.
            let total_bytes = cfg.nvm_bytes as u64 * 4;
            let cluster = HdfsCluster::new(4, replicas, &cfg, 2 << 20);
            let report = cluster.run_teragen(total_bytes, 16 << 10);
            secs.push(report.exec_seconds());
            let saved = if secs.len() == 2 {
                format!("{:.1}%", (1.0 - secs[1] / secs[0]) * 100.0)
            } else {
                String::new()
            };
            t.row(vec![
                replicas.to_string(),
                sys.name().into(),
                fmt(report.exec_seconds()),
                fmt(report.clflush_per_mb()),
                fmt(report.disk_writes_per_mb()),
                saved,
            ]);
        }
    }
    t.print();
    write_csv("fig10", &t.headers(), t.rows());
    t
}
