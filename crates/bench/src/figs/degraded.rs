//! Degraded-mode figure: what disk faults cost, and what they cannot
//! break.
//!
//! Two parts:
//!
//! 1. **Fault-fuzz campaign** — seeded schedules combining a random crash
//!    point with a random fault plan (transient bursts, bad block ranges,
//!    latency spikes). Pass criterion: zero violations — no committed
//!    block lost or torn, transients absorbed by retry, permanent
//!    writeback failures leave the block readable from NVM.
//! 2. **Throughput under degradation** — the same single-shard workload on
//!    a healthy disk, a disk with transient faults (the retry/backoff
//!    path), and a disk with a permanently bad range (the quarantine
//!    path). Shows the cost of absorption and that a degraded cache keeps
//!    serving.

use blockdev::{DiskKind, FaultPlan, FaultyDisk, SimDisk, BLOCK_SIZE};
use crashsim::fault_fuzz_campaign;
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{Health, TincaCache, TincaConfig};

use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// One measured throughput point.
struct DegradedPoint {
    label: &'static str,
    ops_per_sec: f64,
    io_retries: u64,
    absorbed: u64,
    quarantined: usize,
    health: Health,
}

/// A fixed single-threaded commit workload against a cache whose disk is
/// wrapped per `plan` (`None` = bare disk).
fn run_point(label: &'static str, plan: Option<FaultPlan>) -> DegradedPoint {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
    let cache_disk: tinca::DynDisk = match plan {
        Some(p) => FaultyDisk::new(disk, p),
        None => disk,
    };
    let mut cache = TincaCache::format(
        nvm,
        cache_disk,
        TincaConfig {
            ring_bytes: 8 << 10,
            ..TincaConfig::default()
        },
    );
    let blocks = 512u64;
    let ops = 4_000u64;
    let t0 = clock.now_ns();
    for i in 0..ops {
        let mut txn = cache.init_txn();
        let b = (i * 17) % blocks;
        txn.write(b, &[(i % 251) as u8 + 1; BLOCK_SIZE]);
        txn.write((b + 7) % blocks, &[(i % 241) as u8 + 1; BLOCK_SIZE]);
        cache
            .commit(&txn)
            .expect("commits must survive disk faults");
    }
    let elapsed = (clock.now_ns() - t0).max(1);
    let s = cache.stats();
    DegradedPoint {
        label,
        ops_per_sec: ops as f64 / (elapsed as f64 / 1e9),
        io_retries: s.io_retries,
        absorbed: s.transient_errors_absorbed,
        quarantined: cache.quarantined_count(),
        health: cache.health(),
    }
}

/// Runs the figure. Returns `(table, clean)` where `clean` is true iff the
/// fuzz campaign had zero violations and the degraded points behaved
/// (transients fully absorbed, bad range ⇒ `Degraded`).
pub fn run(quick: bool) -> (Table, bool) {
    banner(
        "degraded",
        "Fault injection: crash+fault fuzz campaign and degraded-mode throughput",
        "zero violations; transients absorbed by retry; bad range => Degraded, still serving",
    );

    let runs: u64 = if quick { 200 } else { 1200 };
    let campaign = fault_fuzz_campaign(0xFA57_0000, runs, 40);
    println!(
        "fault-fuzz: {} runs, {} crashed, {} completed, {} degraded, \
         {} transients absorbed over {} retries, {} permanent errors, {} violations",
        campaign.runs,
        campaign.crashes,
        campaign.completed,
        campaign.degraded,
        campaign.transients_absorbed,
        campaign.io_retries,
        campaign.permanent_errors,
        campaign.violations.len(),
    );
    for v in campaign.violations.iter().take(5) {
        println!("  !! {v}");
    }
    let mut clean = campaign.clean();

    let transient_plan = FaultPlan::quiet(0xDE6)
        .with_transient_reads(60)
        .with_transient_writes(60)
        .with_burst_len(3)
        .with_latency_spikes(20, 2_000_000);
    // The workload writes blocks 0..512; 24 of them lose their backing
    // store permanently.
    let bad_plan = FaultPlan::quiet(0xDE7).with_bad_range(100..124);

    let mut t = Table::new(&[
        "disk",
        "ops/s",
        "io retries",
        "transients absorbed",
        "quarantined",
        "health",
    ]);
    for p in [
        run_point("healthy", None),
        run_point("transient-faults", Some(transient_plan)),
        run_point("bad-range", Some(bad_plan)),
    ] {
        match p.label {
            "healthy" => {
                clean &= p.io_retries == 0 && p.quarantined == 0 && p.health == Health::Healthy;
            }
            "transient-faults" => {
                // Every transient burst fits the retry budget: no
                // quarantine, still healthy, retries visible.
                clean &= p.quarantined == 0 && p.health == Health::Healthy;
            }
            _ => {
                clean &= p.quarantined > 0
                    && matches!(p.health, Health::Degraded { .. } | Health::ReadOnly);
            }
        }
        t.row(vec![
            p.label.into(),
            fmt(p.ops_per_sec),
            p.io_retries.to_string(),
            p.absorbed.to_string(),
            p.quarantined.to_string(),
            format!("{:?}", p.health),
        ]);
    }
    t.print();
    println!(
        "degraded-mode check: {}",
        if clean { "CLEAN" } else { "FAIL" }
    );
    write_csv("degraded", &t.headers(), t.rows());
    (t, clean)
}
