//! WAL-elimination figure — what the kvdb personality buys by making the
//! NVM cache the transaction mechanism.
//!
//! Drives the **same** seeded TPC-C record stream through both kvdb
//! durability personalities:
//!
//! * **WalMode** — ARIES-lite redo WAL on the classic
//!   Ext4+JBD2+Flashcache stack. Every committed page travels the
//!   "journaling of journal" route the paper's §2.2 diagnoses: app WAL
//!   append → FS data+journal → home-location writeback → checkpoint
//!   into the database file.
//! * **TincaMode** — no WAL anywhere: one Tinca pool transaction per KV
//!   commit, ring commit = durability point, multi-shard batches on the
//!   persistent two-phase spanning path.
//!
//! Reports simulated commit cost (ns/txn), total device bytes written
//! (NVM lines + disk blocks), and write amplification against the
//! page-image payload, with the commit-path phase tree for each mode.
//! Embeds both modes' crash smoke (random-trip fuzz + persist-frontier
//! enumeration, persistcheck audited inside each recovery) so the
//! headline claim — faster *and* fewer bytes *without* losing crash
//! consistency — is checked in one run.
//!
//! Output: the standard CSV/JSON pair under `EXPERIMENTS-results/`, plus
//! `BENCH_8.json` at the repo root with a flat `gate` object for
//! `perfgate`.

use std::fs;

use crashsim::{CampaignReport, FailureMode, FrontierReport};
use fssim::stack::{StackConfig, System};
use kvdb::{
    apply_txn, tinca_kv_frontier_campaign, tinca_kv_fuzz_campaign, wal_kv_frontier_campaign,
    wal_kv_fuzz_campaign, Db, KvTpccDriver, PageStore, TincaStore, TincaStoreConfig, WalConfig,
    WalStore,
};
use telemetry::Json;

use crate::table::Table;
use crate::{banner, fmt, results_dir, write_csv};

/// TPC-C warehouses the figure's key stream draws from.
const WAREHOUSES: u32 = 4;
/// Seed shared by both modes — identical transaction streams.
const SEED: u64 = 0xE11A;

/// One measured durability personality.
pub struct ModePoint {
    pub mode: &'static str,
    pub txns: u64,
    pub commits: u64,
    pub ns_per_txn: f64,
    /// Total bytes that reached persistent media (NVM lines + disk blocks).
    pub device_bytes: u64,
    pub bytes_per_txn: f64,
    /// Device bytes over committed page-image bytes.
    pub amplification: f64,
    /// Device bytes over logical KV payload bytes (keys + values written).
    pub payload_amplification: f64,
    /// Rendered commit-path phase tree.
    pub phase_tree: String,
}

/// Everything the figure produced (for the bin's acceptance checks).
pub struct WalElimResult {
    pub table: Table,
    pub wal: ModePoint,
    pub tinca: ModePoint,
    /// `wal_ns_per_txn / tinca_ns_per_txn` — the WAL-elimination speedup.
    pub speedup_x: f64,
    /// `wal_bytes_per_txn / tinca_bytes_per_txn` — the write saving.
    pub bytes_ratio_x: f64,
    pub wal_fuzz: CampaignReport,
    pub tinca_fuzz: CampaignReport,
    pub wal_frontier: FrontierReport,
    pub tinca_frontier: FrontierReport,
}

/// Runs `txns` driver transactions against `db`, timing with `clock_now`
/// (a closure so each personality supplies its own notion of elapsed
/// simulated time). Returns the point plus the phase report.
fn run_mode<S: PageStore>(
    mode: &'static str,
    db: &mut Db<S>,
    clock_now: &dyn Fn(&Db<S>) -> u64,
    telemetry_clock: &nvmsim::SimClock,
    txns: u64,
) -> ModePoint {
    let mut driver = KvTpccDriver::new(SEED, WAREHOUSES);
    let start_ns = clock_now(db);
    let start_stats = db.store().stats();
    let mut payload_bytes = 0u64;
    let ((), report) = telemetry::record(telemetry_clock, telemetry::Config::default(), || {
        for _ in 0..txns {
            let txn = driver.next_txn();
            payload_bytes += txn
                .writes
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum::<u64>();
            apply_txn(db, &txn).expect("wal_elim workload commit");
        }
    });
    let elapsed = clock_now(db).saturating_sub(start_ns);
    let stats = db.store().stats();
    let device_bytes = stats.device_bytes() - start_stats.device_bytes();
    let pages = stats.pages_committed - start_stats.pages_committed;
    ModePoint {
        mode,
        txns,
        commits: stats.commits - start_stats.commits,
        ns_per_txn: elapsed as f64 / txns as f64,
        device_bytes,
        bytes_per_txn: device_bytes as f64 / txns as f64,
        amplification: device_bytes as f64 / (pages * kvdb::PAGE_SIZE as u64).max(1) as f64,
        payload_amplification: device_bytes as f64 / payload_bytes.max(1) as f64,
        phase_tree: report.phase_report(),
    }
}

fn run_wal(txns: u64) -> ModePoint {
    let store = WalStore::format(StackConfig::tiny(System::Classic), WalConfig::default())
        .expect("format WAL store");
    let mut db = Db::open(store).expect("open WAL db");
    let clock = db.store().stack().clock.clone();
    run_mode(
        "wal (classic)",
        &mut db,
        &|db| db.store().stack().clock.now_ns(),
        &clock,
        txns,
    )
}

fn run_tinca(txns: u64) -> ModePoint {
    let store = TincaStore::format(TincaStoreConfig::default());
    let mut db = Db::open(store).expect("open Tinca db");
    // Shard 0's clock times the phase tree: the meta page homes there, so
    // it advances on every commit (the disk clock only moves on destage).
    let clock = db.store().devices()[0].clock().clone();
    // Shards advance their own clocks concurrently: elapsed pool time is
    // the maximum over the per-shard clocks and the shared disk clock.
    let now = |db: &Db<TincaStore>| -> u64 {
        db.store()
            .devices()
            .iter()
            .map(|d| d.clock().now_ns())
            .chain(std::iter::once(db.store().clock().now_ns()))
            .max()
            .unwrap_or(0)
    };
    run_mode("tinca (no WAL)", &mut db, &now, &clock, txns)
}

fn campaign_json(r: &CampaignReport) -> Json {
    Json::obj(vec![
        ("runs", r.runs.into()),
        ("crashes", r.crashes.into()),
        ("violations", (r.violations.len() as u64).into()),
    ])
}

fn frontier_json(r: &FrontierReport) -> Json {
    Json::obj(vec![
        ("epochs", r.epochs_total.into()),
        ("states", r.states_run.into()),
        ("violations", (r.violations.len() as u64).into()),
    ])
}

/// Runs the figure: both personalities over the identical transaction
/// stream, the embedded crash smoke for each, and writes CSV +
/// `BENCH_8.json`.
pub fn run(quick: bool) -> WalElimResult {
    banner(
        "wal_elim",
        "KV commit path with and without a WAL (same TPC-C stream, both personalities)",
        "no-WAL mode faster and fewer device bytes, with crash consistency intact",
    );
    let txns: u64 = if quick { 200 } else { 1_200 };

    let wal = run_wal(txns);
    let tinca = run_tinca(txns);

    let mut t = Table::new(&[
        "mode",
        "txns",
        "ns/txn",
        "ktxn/s",
        "device MB",
        "bytes/txn",
        "x page payload",
        "x kv payload",
    ]);
    for p in [&wal, &tinca] {
        t.row(vec![
            p.mode.into(),
            format!("{}", p.txns),
            fmt(p.ns_per_txn),
            fmt(1e6 / p.ns_per_txn),
            fmt(p.device_bytes as f64 / (1 << 20) as f64),
            fmt(p.bytes_per_txn),
            fmt(p.amplification),
            fmt(p.payload_amplification),
        ]);
    }
    t.print();
    write_csv("wal_elim", &t.headers(), t.rows());

    let speedup_x = wal.ns_per_txn / tinca.ns_per_txn.max(f64::MIN_POSITIVE);
    let bytes_ratio_x = wal.bytes_per_txn / tinca.bytes_per_txn.max(f64::MIN_POSITIVE);
    println!(
        "WAL {:.0} ns/txn vs no-WAL {:.0} ns/txn ({speedup_x:.2}x); \
         {:.0} vs {:.0} device bytes/txn ({bytes_ratio_x:.2}x)",
        wal.ns_per_txn, tinca.ns_per_txn, wal.bytes_per_txn, tinca.bytes_per_txn
    );
    for p in [&wal, &tinca] {
        println!("--- {} commit-path phases ---", p.mode);
        println!("{}", p.phase_tree);
    }

    // Embedded crash smoke: both personalities must survive random
    // mid-commit trips and exhaustive persist-frontier enumeration, with
    // the persist-order audit clean inside every recovery.
    let crash_txns = 15;
    let (fuzz_seeds, frontier_cap) = if quick { (8, 3) } else { (20, 6) };
    let wal_fuzz = wal_kv_fuzz_campaign(
        0xE1F0,
        fuzz_seeds,
        crash_txns,
        20_000,
        FailureMode::PowerPull,
    );
    let tinca_fuzz = tinca_kv_fuzz_campaign(
        0xE1F1,
        fuzz_seeds,
        crash_txns,
        1_500,
        FailureMode::PowerPull,
    );
    let wal_frontier = wal_kv_frontier_campaign(0xE1F2, 2, frontier_cap);
    let tinca_frontier = tinca_kv_frontier_campaign(0xE1F3, 2, frontier_cap);
    for (what, runs, crashes, violations) in [
        (
            "wal fuzz",
            wal_fuzz.runs,
            wal_fuzz.crashes,
            &wal_fuzz.violations,
        ),
        (
            "tinca fuzz",
            tinca_fuzz.runs,
            tinca_fuzz.crashes,
            &tinca_fuzz.violations,
        ),
        (
            "wal frontier",
            wal_frontier.epochs_total,
            wal_frontier.states_run,
            &wal_frontier.violations,
        ),
        (
            "tinca frontier",
            tinca_frontier.epochs_total,
            tinca_frontier.states_run,
            &tinca_frontier.violations,
        ),
    ] {
        println!(
            "{what}: {runs} runs/epochs, {crashes} crashes/states, {} violations",
            violations.len()
        );
        for v in violations {
            eprintln!("  violation: {v}");
        }
    }

    // BENCH_8.json — machine-readable summary at the repo root. The flat
    // `gate` counters are what `perfgate` diffs in CI: the no-WAL
    // personality's cost and write volume must not drift; the WAL twins
    // are context.
    let gate = Json::obj(vec![
        ("tinca_ns_per_txn", tinca.ns_per_txn.into()),
        ("tinca_bytes_per_txn", tinca.bytes_per_txn.into()),
        ("wal_ns_per_txn", wal.ns_per_txn.into()),
        ("wal_bytes_per_txn", wal.bytes_per_txn.into()),
        ("speedup_x", speedup_x.into()),
        ("bytes_ratio_x", bytes_ratio_x.into()),
    ]);
    let figure = Json::obj(vec![
        ("figure", "wal_elim".into()),
        (
            "headers",
            Json::Arr(t.headers().iter().map(|h| (*h).into()).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows()
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        ),
    ]);
    let crashes = Json::obj(vec![
        ("wal_fuzz", campaign_json(&wal_fuzz)),
        ("tinca_fuzz", campaign_json(&tinca_fuzz)),
        ("wal_frontier", frontier_json(&wal_frontier)),
        ("tinca_frontier", frontier_json(&tinca_frontier)),
    ]);
    let persist_clean =
        wal_fuzz.clean() && tinca_fuzz.clean() && wal_frontier.clean() && tinca_frontier.clean();
    let bench = Json::obj(vec![
        ("bench", "wal_elim".into()),
        ("quick", quick.into()),
        ("txns", txns.into()),
        ("warehouses", u64::from(WAREHOUSES).into()),
        ("persistcheck_clean", persist_clean.into()),
        ("gate", gate),
        ("crash_campaigns", crashes),
        ("wal_elim", figure),
    ]);
    let dir = results_dir();
    let root = dir.parent().expect("results dir sits in the repo root");
    let path = root.join("BENCH_8.json");
    fs::write(&path, bench.render()).expect("write BENCH_8.json");
    eprintln!("  [bench] {}", path.display());

    WalElimResult {
        table: t,
        wal,
        tinca,
        speedup_x,
        bytes_ratio_x,
        wal_fuzz,
        tinca_fuzz,
        wal_frontier,
        tinca_frontier,
    }
}
