//! Figure 3 — the motivation experiments (§3.1): the cost of journaling's
//! double writes.

use fssim::stack::{build, System};
use nvmsim::NvmConfig;
use workloads::filebench::{Filebench, FilebenchSpec, Personality};
use workloads::fio::{Fio, FioSpec};
use workloads::measure;

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Fig. 3(a): write traffic to the NVM cache with Ext4-journal vs
/// Ext4-no-journal, three Filebench workloads. Paper: journaling causes
/// ≈ 195 %–290 % of the no-journal traffic.
pub fn fig3a(quick: bool) -> Table {
    banner(
        "Fig 3(a)",
        "Write traffic to NVM cache: Ext4 journal vs no-journal (Filebench)",
        "journal ≈ 1.95–2.9× the no-journal write traffic",
    );
    let ops: u64 = if quick { 1_500 } else { 8_000 };
    let mut t = Table::new(&["Workload", "no-journal MB", "journal MB", "ratio"]);
    for p in [
        Personality::Fileserver,
        Personality::Webproxy,
        Personality::Varmail,
    ] {
        let mut traffic = Vec::new();
        for sys in [System::ClassicNoJournal, System::Classic] {
            let cfg = local_cfg(sys, quick);
            let nfiles = (cfg.nvm_bytes / (64 << 10)).min(1 << 14); // dataset ≈ cache size
            let mut stack = build(&cfg).unwrap();
            let mut fb = Filebench::new(FilebenchSpec {
                personality: p,
                nfiles,
                file_bytes: 64 << 10,
                io_bytes: 16 << 10,
                ops,
                seed: 0x3A,
            });
            fb.setup(&mut stack);
            let m = measure(&stack, p.name());
            let _ = fb.run(&mut stack);
            let r = m.finish(&stack, ops);
            traffic.push(r.nvm_mb_written());
        }
        t.row(vec![
            p.name().into(),
            fmt(traffic[0]),
            fmt(traffic[1]),
            fmt(traffic[1] / traffic[0]),
        ]);
    }
    t.print();
    write_csv("fig3a", &t.headers(), t.rows());
    t
}

/// Fig. 3(b): Fio pure-write bandwidth under (i) no journal + no flush
/// cost, (ii) journal + no flush cost, (iii) journal + flush. Paper:
/// journaling −31.5 %, flushes a further −28.3 %.
pub fn fig3b(quick: bool) -> Table {
    banner(
        "Fig 3(b)",
        "Fio write bandwidth: journaling and clflush/sfence overheads",
        "journal costs ≈ 31.5 %, clflush+sfence a further ≈ 28.3 %",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let variants: [(&str, System, bool); 3] = [
        ("no-journal, no-flush", System::ClassicNoJournal, true),
        ("journal, no-flush", System::Classic, true),
        ("journal, flush", System::Classic, false),
    ];
    let mut t = Table::new(&["Configuration", "Bandwidth MB/s", "vs first"]);
    let mut first = 0.0f64;
    for (name, sys, free_flush) in variants {
        let mut cfg = local_cfg(sys, quick);
        if free_flush {
            let mut nvm = NvmConfig::new(cfg.nvm_bytes, cfg.nvm_tech);
            nvm.clflush_overhead_ns = 0;
            nvm.clflush_clean_ns = 0;
            nvm.sfence_ns = 0;
            // "Without clflush" also means stores are not stalled by the
            // medium: persistence is free.
            nvm.tech = nvmsim::NvmTech::Nvdimm;
            cfg.nvm_override = Some(nvm);
        }
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2, // the paper's 20GB:8GB
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0x3B,
        });
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        let bw = r.app_write_mb_per_sec();
        if first == 0.0 {
            first = bw;
        }
        t.row(vec![
            name.into(),
            fmt(bw),
            format!("{:.0}%", bw / first * 100.0),
        ]);
    }
    t.print();
    write_csv("fig3b", &t.headers(), t.rows());
    t
}
