//! Metadata-scheme spectrum (§1 of the paper): Flashcache's synchronous
//! metadata *blocks* vs FlashTier/bcache's metadata *log* vs Tinca's
//! fine-grained 16 B entries — all under the same Fio write workload.
//!
//! The paper's argument: block-format metadata causes "catastrophic" write
//! amplification (§3.2); a log helps but still journals metadata
//! separately from data; Tinca folds metadata persistence into the same
//! atomic entry update that commits the data.

use fssim::stack::{build, System};
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

pub fn run(quick: bool) -> Table {
    banner(
        "Metadata schemes (§1/§3.2)",
        "Fio writes: Flashcache sync-block vs FlashTier/bcache log vs Tinca 16B entries",
        "block-format metadata is the most expensive; the log helps; Tinca's entries are cheapest",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let mut t = Table::new(&[
        "System",
        "metadata scheme",
        "write IOPS",
        "clflush/op",
        "vs sync-block",
    ]);
    let mut base = 0.0f64;
    for (sys, scheme) in [
        (System::Classic, "sync metadata blocks"),
        (System::ClassicLogMeta, "metadata log"),
        (System::Tinca, "16B atomic entries"),
    ] {
        let cfg = local_cfg(sys, quick);
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0x3E7A,
        });
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        if base == 0.0 {
            base = r.ops_per_sec();
        }
        t.row(vec![
            sys.name().into(),
            scheme.into(),
            fmt(r.ops_per_sec()),
            fmt(r.clflush_per_op()),
            format!("{:+.1}%", (r.ops_per_sec() / base - 1.0) * 100.0),
        ]);
    }
    t.print();
    write_csv("meta_schemes", &t.headers(), t.rows());
    t
}
