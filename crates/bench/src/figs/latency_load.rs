//! Latency-under-load figure — the knee curve the closed-loop figures
//! cannot show.
//!
//! Drives Tinca (sharded pool) and Classic+JBD2 (one stack per shard)
//! through the open-loop tier ([`workloads::openloop`]) over a shared
//! ladder of offered arrival rates, and reports delivered throughput and
//! arrival-to-completion p50/p99/p999 at each point. Below saturation
//! the two latency columns sit near service time; past it, queue wait
//! dominates and p999 rises superlinearly — the knee. Because Tinca's
//! durable op (one ring commit) is far cheaper than Classic's (journaled
//! write + fsync), Tinca's knee sits at a strictly higher offered load.
//!
//! Output: the standard CSV/JSON pair under `EXPERIMENTS-results/`, plus
//! `BENCH_6.json` at the repo root with the `{figure,headers,rows}`
//! payload, a flat `gate` object for `perfgate` (knee throughput and
//! sub-knee p99, ±5 %), and the crash-mid-backlog campaign verdict.
//!
//! Every Tinca point runs on traced NVM devices and must pass the
//! per-shard persist-order audit — saturation (group-committed backlog,
//! destage under pressure) must not bend the commit protocol.

use std::fs;

use blockdev::{DiskKind, SimDisk};
use crashsim::BacklogReport;
use nvmsim::{shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use telemetry::Json;
use tinca::{PoolConfig, TincaConfig, TincaPool};
use workloads::openloop::{
    probe_capacity, Arrivals, ClassicServer, OpenLoopDriver, OpenLoopReport, OpenLoopSpec,
    TincaServer,
};

use crate::table::Table;
use crate::{banner, fmt, results_dir, write_csv};

/// A delivered:offered ratio at or above this is "keeping up"; the knee
/// is the largest ladder rate that still clears it.
pub const KNEE_DELIVERY: f64 = 0.99;

/// One measured (system, offered-rate) point.
pub struct LoadPoint {
    pub offered_rate: f64,
    pub report: OpenLoopReport,
    /// Persist-order violations (Tinca points only; 0 for Classic).
    pub violations: usize,
}

/// Everything the figure produced (for the bin's acceptance checks).
pub struct LatencyLoadResult {
    pub table: Table,
    pub tinca_knee: f64,
    pub classic_knee: f64,
    pub tinca_p99_subknee: f64,
    pub classic_p99_subknee: f64,
    /// Tinca p999 at the top of the ladder over p999 at the bottom —
    /// the "superlinear past saturation" acceptance signal.
    pub tinca_tail_ratio: f64,
    pub persist_clean: bool,
    pub campaign: BacklogReport,
}

const SHARDS: usize = 4;

fn base_spec(quick: bool, rate: f64) -> OpenLoopSpec {
    OpenLoopSpec {
        users: if quick { 100_000 } else { 1_000_000 },
        arrivals: Arrivals::Poisson {
            rate_ops_per_sec: rate,
        },
        ops: if quick { 1_200 } else { 6_000 },
        read_pct: 30,
        blocks: if quick { 2_048 } else { 8_192 },
        txn_blocks: 2,
        queue_cap: 0, // unbounded: let the backlog grow so the knee shows
        limiter: None,
        seed: 0x10AD,
    }
}

fn build_pool(quick: bool) -> (TincaPool, Vec<Nvm>, SimClock) {
    let per_shard = if quick { 2 << 20 } else { 4 << 20 };
    let devices = shard_devices(
        &NvmConfig::new(SHARDS * per_shard, NvmTech::Pcm).with_tracing(),
        SHARDS,
    );
    let disk_clock = SimClock::new();
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, disk_clock.clone());
    let pool = TincaPool::format(
        devices.clone(),
        disk,
        PoolConfig {
            shards: SHARDS,
            cache: TincaConfig {
                ring_bytes: 16 << 10,
                destage: true,
                coalesce_flushes: true,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, devices, disk_clock)
}

fn classic_server(quick: bool) -> ClassicServer {
    let mut cfg = fssim::stack::StackConfig::tiny(fssim::stack::System::Classic);
    cfg.nvm_bytes = if quick { 2 << 20 } else { 4 << 20 };
    ClassicServer::new(SHARDS, &cfg)
}

/// Runs one Tinca rate point on a fresh pool, auditing every shard's
/// persist-order trace.
fn tinca_point(quick: bool, rate: f64) -> LoadPoint {
    let (pool, devices, disk_clock) = build_pool(quick);
    let report =
        OpenLoopDriver::new(base_spec(quick, rate), TincaServer::new(&pool, disk_clock)).run();
    pool.flush_all().unwrap();
    let mut violations = 0usize;
    for (s, d) in devices.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(pool.shard_metadata_ranges(s)));
        checker.push_all(&d.take_trace());
        let r = checker.report();
        if !r.is_clean() {
            violations += r.violations.len();
            eprintln!("--- Tinca shard {s} at {rate:.0} ops/s ---\n{r}");
        }
    }
    LoadPoint {
        offered_rate: rate,
        report,
        violations,
    }
}

fn classic_point(quick: bool, rate: f64) -> LoadPoint {
    let server = classic_server(quick);
    let report = OpenLoopDriver::new(base_spec(quick, rate), server).run();
    LoadPoint {
        offered_rate: rate,
        report,
        violations: 0,
    }
}

/// The knee: largest ladder rate whose delivered throughput stays within
/// [`KNEE_DELIVERY`] of the configured offered rate (0 if even the
/// lowest rate collapses).
fn knee(points: &[LoadPoint]) -> f64 {
    points
        .iter()
        .filter(|p| p.report.delivered_ops_per_sec() >= KNEE_DELIVERY * p.offered_rate)
        .map(|p| p.offered_rate)
        .fold(0.0, f64::max)
}

/// Runs the figure: probes both systems' capacities, lays a shared
/// log-spaced rate ladder across them, measures every (system, rate)
/// point, runs the crash-mid-backlog campaign, and writes CSV +
/// `BENCH_6.json`.
pub fn run(quick: bool) -> LatencyLoadResult {
    banner(
        "latency_load",
        "Open-loop latency under offered load: Tinca vs Classic+JBD2 knee curve",
        "Tinca's knee at strictly higher offered load; p999 superlinear past saturation",
    );

    // Capacity probes on scratch servers (mutate clocks/caches, so the
    // measured points below use fresh builds).
    let probe_ops = if quick { 200 } else { 400 };
    let cap_tinca = {
        let (pool, _devices, disk_clock) = build_pool(quick);
        let mut server = TincaServer::new(&pool, disk_clock);
        probe_capacity(&mut server, &base_spec(quick, 1_000.0), probe_ops)
    };
    let cap_classic = {
        let mut server = classic_server(quick);
        probe_capacity(&mut server, &base_spec(quick, 1_000.0), probe_ops)
    };
    println!("probed capacity: Tinca {cap_tinca:.0} ops/s, Classic {cap_classic:.0} ops/s");

    // One absolute ladder covering well under the weaker system's knee
    // through well past the stronger one's.
    let lo = 0.3 * cap_tinca.min(cap_classic);
    let hi = 2.5 * cap_tinca.max(cap_classic);
    let n = if quick { 5 } else { 8 };
    let ladder: Vec<f64> = (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect();

    let mut t = Table::new(&[
        "system",
        "offered kops/s",
        "delivered kops/s",
        "p50 us",
        "p99 us",
        "p999 us",
        "qwait p99 us",
    ]);
    let mut tinca_points = Vec::with_capacity(n);
    let mut classic_points = Vec::with_capacity(n);
    let mut persist_clean = true;
    for &rate in &ladder {
        for system in ["Tinca", "Classic"] {
            let p = if system == "Tinca" {
                let p = tinca_point(quick, rate);
                persist_clean &= p.violations == 0;
                tinca_points.push(p);
                tinca_points.last().unwrap()
            } else {
                classic_points.push(classic_point(quick, rate));
                classic_points.last().unwrap()
            };
            let r = &p.report;
            let us = |v: Option<u64>| fmt(v.unwrap_or(0) as f64 / 1e3);
            t.row(vec![
                system.into(),
                fmt(rate / 1e3),
                fmt(r.delivered_ops_per_sec() / 1e3),
                us(r.p50()),
                us(r.p99()),
                us(r.p999()),
                us(r.queue_wait.p99()),
            ]);
        }
    }
    t.print();
    write_csv("latency_load", &t.headers(), t.rows());

    let tinca_knee = knee(&tinca_points);
    let classic_knee = knee(&classic_points);
    let p999_of = |p: &LoadPoint| p.report.p999().unwrap_or(0) as f64;
    let tinca_tail_ratio = p999_of(tinca_points.last().unwrap())
        / p999_of(tinca_points.first().unwrap()).max(f64::MIN_POSITIVE);
    let tinca_p99_subknee = tinca_points[0].report.p99().unwrap_or(0) as f64;
    let classic_p99_subknee = classic_points[0].report.p99().unwrap_or(0) as f64;
    println!(
        "knee: Tinca {:.0} ops/s vs Classic {:.0} ops/s ({:.2}x); \
         Tinca p999 tail ratio top/bottom of ladder: {:.1}x (persistcheck {})",
        tinca_knee,
        classic_knee,
        tinca_knee / classic_knee.max(f64::MIN_POSITIVE),
        tinca_tail_ratio,
        if persist_clean { "CLEAN" } else { "FAIL" }
    );

    // Crash mid-backlog: overload + bounded queue + power cut; recovery
    // must be exact and shed/queued ops must leave no trace.
    let campaign = crashsim::backlog_campaign(SHARDS, 0x6B10, if quick { 10 } else { 40 });
    println!(
        "crash-mid-backlog: {} runs, {} crashes, {} ops shed, {} violations",
        campaign.runs,
        campaign.crashes,
        campaign.shed,
        campaign.violations.len()
    );
    for v in &campaign.violations {
        eprintln!("  violation: {v}");
    }

    // BENCH_6.json — machine-readable summary at the repo root. The flat
    // `gate` counters are what `perfgate` diffs in CI (string-extraction
    // parsing: keep names stable, keep the object flat).
    let gate = Json::obj(vec![
        ("tinca_knee_ops_per_sec", tinca_knee.into()),
        ("tinca_p99_ns_subknee", tinca_p99_subknee.into()),
        ("classic_knee_ops_per_sec", classic_knee.into()),
        ("classic_p99_ns_subknee", classic_p99_subknee.into()),
    ]);
    let campaign_json = Json::obj(vec![
        ("runs", campaign.runs.into()),
        ("crashes", campaign.crashes.into()),
        ("shed", campaign.shed.into()),
        ("violations", (campaign.violations.len() as u64).into()),
    ]);
    let figure = Json::obj(vec![
        ("figure", "latency_load".into()),
        (
            "headers",
            Json::Arr(t.headers().iter().map(|h| (*h).into()).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows()
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        ),
    ]);
    let bench = Json::obj(vec![
        ("bench", "latency_load".into()),
        ("quick", quick.into()),
        ("shards", (SHARDS as u64).into()),
        ("knee_delivery", KNEE_DELIVERY.into()),
        ("probed_capacity_tinca", cap_tinca.into()),
        ("probed_capacity_classic", cap_classic.into()),
        ("tinca_tail_ratio", tinca_tail_ratio.into()),
        ("persistcheck_clean", persist_clean.into()),
        ("gate", gate),
        ("crash_campaign", campaign_json),
        ("latency_load", figure),
    ]);
    let dir = results_dir();
    let root = dir.parent().expect("results dir sits in the repo root");
    let path = root.join("BENCH_6.json");
    fs::write(&path, bench.render()).expect("write BENCH_6.json");
    eprintln!("  [bench] {}", path.display());

    LatencyLoadResult {
        table: t,
        tinca_knee,
        classic_knee,
        tinca_p99_subknee,
        classic_p99_subknee,
        tinca_tail_ratio,
        persist_clean,
        campaign,
    }
}
