//! Figure 13 + §5.4.3 — blocks per committed transaction over time for
//! Fileserver vs Webproxy, and the COW spatial overhead bound.

use blockdev::BLOCK_SIZE;
use fssim::stack::{build, System};
use workloads::filebench::{Filebench, FilebenchSpec, Personality};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Runs one personality with timer-style commits (a commit every fixed
/// number of operations, like JBD2's 5-second timer) and returns the
/// per-transaction block counts.
fn txn_sizes(personality: Personality, quick: bool) -> Vec<u32> {
    let mut cfg = local_cfg(System::Tinca, quick);
    // Timer-batched commits: disable size-triggered batching; Fig. 13's
    // transaction sizes then reflect each window's incoming write volume.
    cfg.txn_block_limit = 1 << 20;
    cfg.ring_bytes = 512 << 10;
    let mut stack = build(&cfg).unwrap();
    let ops: u64 = if quick { 2_000 } else { 10_000 };
    let mut fb = Filebench::new(FilebenchSpec {
        personality,
        nfiles: 512,
        file_bytes: 64 << 10,
        io_bytes: 16 << 10,
        ops,
        seed: 0x13,
    });
    fb.setup(&mut stack);
    // Drive the run in fixed windows, committing at each boundary.
    let committed_before = stack.fs.txn_sizes().len();
    // Filebench::run commits internally only on varmail fsyncs and at the
    // end; emulate the timer by splitting into window-sized sub-runs.
    let windows: u64 = if quick { 10 } else { 40 };
    let per_window = ops / windows;
    for w in 0..windows {
        let mut sub = Filebench::new(FilebenchSpec {
            personality,
            nfiles: 512,
            file_bytes: 64 << 10,
            io_bytes: 16 << 10,
            ops: per_window,
            seed: 0x1300 + w,
        });
        let _ = sub.run(&mut stack);
    }
    stack.fs.txn_sizes()[committed_before..].to_vec()
}

/// Prints the per-transaction block-count series (sampled) for both
/// personalities and the worst-case COW overhead (§5.4.3). Paper:
/// fileserver ≈ 2× webproxy blocks/txn; worst-case COW cost ≈ 0.4 % of an
/// 8 GB cache.
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 13 / §5.4.3",
        "Blocks per committed transaction (fileserver vs webproxy) + COW overhead",
        "fileserver ~2x webproxy blocks/txn; worst-case COW space ~0.4% of cache",
    );
    let fs_sizes = txn_sizes(Personality::Fileserver, quick);
    let wp_sizes = txn_sizes(Personality::Webproxy, quick);
    let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[u32]| v.iter().copied().max().unwrap_or(0);

    let mut t = Table::new(&[
        "Workload",
        "txns",
        "mean blk/txn",
        "max blk/txn",
        "worst COW MB",
        "% of cache",
    ]);
    let cache_bytes = (32 << 20) as f64;
    for (name, sizes) in [("fileserver", &fs_sizes), ("webproxy", &wp_sizes)] {
        let worst = max(sizes) as f64 * BLOCK_SIZE as f64;
        t.row(vec![
            name.into(),
            sizes.len().to_string(),
            fmt(mean(sizes)),
            max(sizes).to_string(),
            fmt(worst / (1 << 20) as f64),
            format!("{:.2}%", worst / cache_bytes * 100.0),
        ]);
    }
    t.print();
    println!(
        "  fileserver/webproxy mean blocks-per-txn ratio: {:.2} (paper: ~2x)",
        mean(&fs_sizes) / mean(&wp_sizes).max(1e-9)
    );
    // Emit the raw series for plotting.
    let series: Vec<Vec<String>> = fs_sizes
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            vec![
                i.to_string(),
                v.to_string(),
                wp_sizes.get(i).map(ToString::to_string).unwrap_or_default(),
            ]
        })
        .collect();
    write_csv(
        "fig13_series",
        &["txn", "fileserver_blocks", "webproxy_blocks"],
        &series,
    );
    write_csv("fig13", &t.headers(), t.rows());
    t
}
