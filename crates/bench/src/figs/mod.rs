//! One module per table/figure of the paper's evaluation.

pub mod degraded;
pub mod destage;
pub mod endurance;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod flush_instr;
pub mod latency_load;
pub mod meta_schemes;
pub mod mw_scaling;
pub mod persistrace;
pub mod phases;
pub mod recoverability;
pub mod scaling;
pub mod spanning;
pub mod tables;
pub mod ubj_compare;
pub mod wal_elim;

use fssim::stack::{StackConfig, System};

/// The scaled local-machine configuration shared by the local figures
/// (÷256 of the paper's 8 GB NVM / 128 GB SSD testbed, with a 32 MB NVM
/// cache so runs finish in seconds). Quick mode shrinks the cache — all
/// dataset sizes derive from it, so the dataset:cache pressure the paper
/// creates (20 GB : 8 GB etc.) is preserved at every size.
pub fn local_cfg(system: System, quick: bool) -> StackConfig {
    let mut cfg = StackConfig::scaled_local(system);
    cfg.nvm_bytes = if quick { 8 << 20 } else { 32 << 20 };
    // The local figures measure Tinca with the write-behind pipeline
    // (destage daemon + flush coalescing) enabled; the `destage` figure
    // isolates its contribution with an explicit on/off comparison.
    cfg.destage = true;
    cfg
}

/// Per-node configuration for the cluster figures (four nodes).
pub fn cluster_cfg(system: System, quick: bool) -> StackConfig {
    let mut cfg = StackConfig::scaled_local(system);
    cfg.nvm_bytes = if quick { 4 << 20 } else { 8 << 20 };
    cfg.max_files = 4 << 10;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_build() {
        let c = local_cfg(System::Tinca, false);
        assert_eq!(c.nvm_bytes, 32 << 20);
        assert!(local_cfg(System::Tinca, true).nvm_bytes < c.nvm_bytes);
        let k = cluster_cfg(System::Classic, false);
        assert_eq!(k.nvm_bytes, 8 << 20);
    }
}
