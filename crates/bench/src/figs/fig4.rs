//! Figure 4 — the cost of Flashcache's synchronous block-format cache
//! metadata updates (§3.2).

use fssim::stack::{build, System};
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Fio random writes on four Classic variants: journaling × metadata
/// updates. Paper: waiving metadata updates improves throughput by
/// ≈ 45 % with journaling and ≈ 65 % without.
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 4",
        "Impact of synchronously updating block-format cache metadata (Fio writes)",
        "no-metadata ≈ +45 % with journal, ≈ +65 % without journal",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let variants: [(&str, System); 4] = [
        ("journal + metadata", System::Classic),
        ("journal, no metadata", System::ClassicNoMeta),
        ("no journal + metadata", System::ClassicNoJournal),
        ("no journal, no metadata", System::ClassicNoJournalNoMeta),
    ];
    let mut t = Table::new(&["Configuration", "write IOPS", "vs metadata-on"]);
    let mut results: Vec<f64> = Vec::new();
    for (name, sys) in variants {
        let cfg = local_cfg(sys, quick);
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0x04,
        });
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        results.push(r.ops_per_sec());
        let base = match results.len() {
            2 => Some(results[0]),
            4 => Some(results[2]),
            _ => None,
        };
        let rel = base
            .map(|b| format!("+{:.1}%", (r.ops_per_sec() / b - 1.0) * 100.0))
            .unwrap_or_else(|| "(base)".into());
        t.row(vec![name.into(), fmt(r.ops_per_sec()), rel]);
    }
    t.print();
    write_csv("fig4", &t.headers(), t.rows());
    t
}
