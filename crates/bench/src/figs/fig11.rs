//! Figure 11 — Filebench on the GlusterFS-like cluster (§5.3.2).

use cluster::{GlusterCluster, GlusterFilebench};
use fssim::stack::System;
use workloads::filebench::Personality;

use crate::figs::cluster_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// OPs/s (a), clflush per op (b), disk writes per op (c) for the three
/// personalities at replica count 2 on four nodes. Paper: Tinca 1.8×
/// (fileserver), 1.5× (varmail), +20 % (webproxy).
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 11",
        "Filebench on GlusterFS (4 nodes, replica 2): OPs/s, clflush/op, disk writes/op",
        "Tinca 1.8x fileserver, 1.5x varmail, +20% webproxy",
    );
    let ops: u64 = if quick { 500 } else { 4_000 };
    let mut t = Table::new(&[
        "Workload",
        "System",
        "OPs/s",
        "clflush/op",
        "disk wr/op",
        "ratio",
    ]);
    for p in [
        Personality::Fileserver,
        Personality::Webproxy,
        Personality::Varmail,
    ] {
        let mut ops_s = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let cfg = cluster_cfg(sys, quick);
            let cluster = GlusterCluster::new(4, 2, &cfg);
            let fb = GlusterFilebench {
                personality: p,
                // Per-node share (dataset / 2 at replica 2) ≈ 2× node cache.
                nfiles: cfg.nvm_bytes / (16 << 10),
                file_bytes: 64 << 10,
                io_bytes: 16 << 10,
                ops,
                seed: 0x11,
            };
            let report = fb.run(cluster);
            ops_s.push(report.ops_per_sec());
            let ratio = if ops_s.len() == 2 {
                format!("{:.2}x", ops_s[1] / ops_s[0])
            } else {
                String::new()
            };
            t.row(vec![
                p.name().into(),
                sys.name().into(),
                fmt(report.ops_per_sec()),
                fmt(report.clflush_per_op()),
                fmt(report.disk_writes_per_op()),
                ratio,
            ]);
        }
    }
    t.print();
    write_csv("fig11", &t.headers(), t.rows());
    t
}
