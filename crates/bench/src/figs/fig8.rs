//! Figure 8 — TPC-C workload, Classic vs Tinca across user counts
//! (§5.2.2).

use fssim::stack::{build, Stack, StackConfig, System};
use workloads::tpcc::{Tpcc, TpccSpec};
use workloads::RunReport;

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Runs one TPC-C configuration and returns (report, write hit rate).
pub fn run_one(cfg: &StackConfig, users: u32, txns: u64) -> (RunReport, f64, Stack) {
    let mut stack = build(cfg).unwrap();
    let mut tpcc = Tpcc::new(TpccSpec {
        warehouses: 16,
        warehouse_bytes: (cfg.nvm_bytes as u64 * 4) / 16, // 4:1 dataset:cache
        users,
        txns,
        seed: 0x08C0 + users as u64,
    });
    tpcc.setup(&mut stack);
    let snap0 = stack.fs.backend().cache_snapshot();
    let r = tpcc.run(&mut stack);
    let snap = stack.fs.backend().cache_snapshot().delta(&snap0);
    (r, snap.write_hit_rate().unwrap_or(0.0), stack)
}

/// TPM (a), clflush per transaction (b), disk writes per transaction (c)
/// for 5–60 users. Paper: Tinca ≈ 1.7–1.8× TPM; clflush/txn ≈ 30–36 % of
/// Classic; Classic ≈ 4.2→7.0 blocks/txn vs Tinca 1.9→3.0; both decline
/// with users, Tinca less (−35.3 % vs −41.0 %).
pub fn run(quick: bool) -> Table {
    banner(
        "Fig 8",
        "TPC-C: TPM, clflush/txn, disk writes/txn vs user count",
        "Tinca ~1.7-1.8x TPM; clflush/txn ~30-36% of Classic; Tinca declines less",
    );
    let users_list: &[u32] = if quick {
        &[5, 20]
    } else {
        &[5, 10, 15, 20, 40, 60]
    };
    let txns: u64 = if quick { 600 } else { 3_000 };
    let mut t = Table::new(&[
        "Users",
        "System",
        "TPM",
        "clflush/txn",
        "disk wr/txn",
        "TPM ratio",
    ]);
    for &users in users_list {
        let mut tpm = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let (r, _, _) = run_one(&local_cfg(sys, quick), users, txns);
            tpm.push(r.ops_per_min());
            let ratio = if tpm.len() == 2 {
                format!("{:.2}x", tpm[1] / tpm[0])
            } else {
                String::new()
            };
            t.row(vec![
                users.to_string(),
                sys.name().into(),
                fmt(r.ops_per_min()),
                fmt(r.clflush_per_op()),
                fmt(r.disk_writes_per_op()),
                ratio,
            ]);
        }
    }
    t.print();
    write_csv("fig8", &t.headers(), t.rows());
    t
}
