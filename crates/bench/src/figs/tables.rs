//! Table 1 (NVM technologies) and Table 2 (benchmark roster).

use nvmsim::NvmTech;

use crate::table::Table;
use crate::{banner, write_csv};

/// Table 1: the NVM technology parameters the simulator uses.
pub fn table1() -> Table {
    banner(
        "Table 1",
        "Typical DRAM and NVM technologies (simulator latency presets)",
        "DRAM/NVDIMM 60ns; STT-RAM +50/50ns; PCM +50ns read / +180ns write (§5.1)",
    );
    let mut t = Table::new(&["Technology", "Read (ns/line)", "Write (ns/line)"]);
    for tech in NvmTech::all() {
        t.row(vec![
            tech.name().into(),
            tech.read_ns().to_string(),
            tech.write_ns().to_string(),
        ]);
    }
    t.print();
    write_csv("table1", &t.headers(), t.rows());
    t
}

/// Table 2: the benchmark roster at paper scale and at this repo's scale.
pub fn table2() -> Table {
    banner(
        "Table 2",
        "Benchmarks used to evaluate Tinca and Classic",
        "2 local + 4 cluster benchmarks; datasets scaled with the cache, ratios preserved",
    );
    let mut t = Table::new(&[
        "Tier",
        "Benchmark",
        "R/W",
        "Request",
        "Paper dataset",
        "Scaled dataset",
        "Description",
    ]);
    for r in workloads::spec::table2() {
        t.row(vec![
            r.tier.into(),
            r.benchmark.into(),
            r.rw_ratio.into(),
            r.request_size.into(),
            r.paper_dataset.into(),
            r.scaled_dataset.into(),
            r.description.into(),
        ]);
    }
    t.print();
    write_csv("table2", &t.headers(), t.rows());
    t
}
