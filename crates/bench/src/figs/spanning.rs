//! Spanning-mix figure — the cost of cross-shard atomicity.
//!
//! Drives a 4-shard pool through a fixed transaction budget while the
//! fraction of transactions that **span every shard** (and therefore run
//! the two-phase spanning protocol: intent publish → per-shard fragment
//! prepares → resolve → window retirement) sweeps 0 % → 50 %. The 0 %
//! point is the plain sharded fast path — its cost is gated by
//! `perfgate` so the spanning machinery can never tax single-shard
//! commits — and the spread to the 50 % point prices the protocol.
//!
//! Every point runs on traced devices and must pass the persist-order
//! audit per shard **and** on the merged pool-wide trace (the intent
//! record's publish/resolve/retire stores are commit points like any
//! other). The run also embeds the spanning crash smoke: a frontier
//! enumeration and a short random-trip fuzz sweep, both of which must
//! report zero torn transactions.
//!
//! Output: the standard CSV/JSON pair under `EXPERIMENTS-results/`, plus
//! `BENCH_7.json` at the repo root with a flat `gate` object for
//! `perfgate`.

use std::fs;

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use crashsim::{FrontierReport, PoolFuzzReport};
use nvmsim::{merge_shard_traces, shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::Json;
use tinca::{PoolConfig, TincaConfig, TincaPool};

use crate::table::Table;
use crate::{banner, fmt, results_dir, write_csv};

const SHARDS: usize = 4;
/// Spanning percentages swept by the figure.
pub const FRACS: [u32; 4] = [0, 10, 25, 50];

/// One measured mix point.
pub struct MixPoint {
    pub frac_pct: u32,
    pub txns: u64,
    pub spanning_txns: u64,
    pub ns_per_txn: f64,
    pub violations: usize,
}

/// Everything the figure produced (for the bin's acceptance checks).
pub struct SpanningResult {
    pub table: Table,
    pub points: Vec<MixPoint>,
    /// Fast-path cost at 0 % spanning — the perfgate anchor.
    pub single_shard_ns_per_txn: f64,
    /// Cost at the 50 % mix.
    pub spanning50_ns_per_txn: f64,
    /// `spanning50 / single_shard`: what the two-phase protocol prices in.
    pub overhead_x: f64,
    pub persist_clean: bool,
    pub frontier: FrontierReport,
    pub fuzz: PoolFuzzReport,
}

fn build_pool(quick: bool) -> (TincaPool, Vec<Nvm>) {
    let per_shard = if quick { 2 << 20 } else { 4 << 20 };
    let devices = shard_devices(
        &NvmConfig::new(SHARDS * per_shard, NvmTech::Pcm).with_tracing(),
        SHARDS,
    );
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let pool = TincaPool::format(
        devices.clone(),
        disk,
        PoolConfig {
            shards: SHARDS,
            cache: TincaConfig {
                ring_bytes: 16 << 10,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, devices)
}

/// Runs one mix point: `txns` four-block transactions, `frac_pct` of
/// which touch all four shards (one block each); the rest land all four
/// blocks on one round-robin home shard. Deterministic per seed, so the
/// gated costs are replay-stable.
fn run_point(quick: bool, frac_pct: u32) -> MixPoint {
    let (pool, devices) = build_pool(quick);
    let txns: u64 = if quick { 400 } else { 2_000 };
    let bases: u64 = if quick { 128 } else { 256 };
    let mut rng = StdRng::seed_from_u64(0x5BA6 ^ u64::from(frac_pct));
    let starts: Vec<u64> = devices.iter().map(|d| d.clock().now_ns()).collect();

    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..txns {
        let base = rng.gen_range(0..bases);
        let v = rng.gen_range(1..=255u8);
        buf[0] = v;
        let mut t = pool.init_txn();
        if rng.gen_range(0..100) < frac_pct {
            // One block on every shard: block `base*SHARDS + s` homes on `s`.
            for s in 0..SHARDS as u64 {
                t.write(base * SHARDS as u64 + s, &buf);
            }
        } else {
            // Four blocks, all ≡ `i % SHARDS` (mod SHARDS): one fragment.
            let home = i % SHARDS as u64;
            for k in 0..SHARDS as u64 {
                t.write(((base + k) % bases) * SHARDS as u64 + home, &buf);
            }
        }
        pool.commit(t).expect("spanning bench commit");
    }
    // Pool wall-clock is the maximum over per-shard clocks.
    let elapsed = devices
        .iter()
        .zip(&starts)
        .map(|(d, s)| d.clock().now_ns() - s)
        .max()
        .unwrap_or(0);
    let spanning_txns = pool.stats().spanning_commits;

    // Persist-order audit: each shard alone, then the merged pool trace.
    let mut violations = 0usize;
    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    let ranges: Vec<_> = (0..SHARDS).map(|s| pool.shard_metadata_ranges(s)).collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(ranges[s].clone()));
        checker.push_all(trace);
        let r = checker.report();
        if !r.is_clean() {
            violations += r.violations.len();
            eprintln!("--- shard {s} at {frac_pct}% spanning ---\n{r}");
        }
    }
    let shard_capacity = devices[0].capacity();
    let merged_ranges: Vec<_> = ranges
        .iter()
        .enumerate()
        .flat_map(|(s, rs)| {
            let base = s * shard_capacity;
            rs.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let r = checker.report();
    if !r.is_clean() {
        violations += r.violations.len();
        eprintln!("--- merged trace at {frac_pct}% spanning ---\n{r}");
    }

    MixPoint {
        frac_pct,
        txns,
        spanning_txns,
        ns_per_txn: elapsed as f64 / txns as f64,
        violations,
    }
}

/// Runs the figure: the spanning-fraction sweep, the embedded crash
/// smoke (frontier enumeration + random-trip fuzz), and writes CSV +
/// `BENCH_7.json`.
pub fn run(quick: bool) -> SpanningResult {
    banner(
        "spanning",
        "Cross-shard transaction mix: two-phase spanning commit cost vs fraction",
        "0% point at fast-path cost (gated); zero torn txns under frontier + fuzz",
    );

    let mut t = Table::new(&[
        "spanning %",
        "txns",
        "spanning txns",
        "ns/txn",
        "ktxn/s",
        "persist violations",
    ]);
    let mut points = Vec::with_capacity(FRACS.len());
    let mut persist_clean = true;
    for &frac in &FRACS {
        let p = run_point(quick, frac);
        persist_clean &= p.violations == 0;
        t.row(vec![
            format!("{frac}"),
            format!("{}", p.txns),
            format!("{}", p.spanning_txns),
            fmt(p.ns_per_txn),
            fmt(1e6 / p.ns_per_txn),
            format!("{}", p.violations),
        ]);
        points.push(p);
    }
    t.print();
    write_csv("spanning", &t.headers(), t.rows());

    let single_shard_ns_per_txn = points[0].ns_per_txn;
    let spanning50_ns_per_txn = points[points.len() - 1].ns_per_txn;
    let overhead_x = spanning50_ns_per_txn / single_shard_ns_per_txn.max(f64::MIN_POSITIVE);
    println!(
        "fast path {:.0} ns/txn, 50% mix {:.0} ns/txn ({:.2}x); persistcheck {}",
        single_shard_ns_per_txn,
        spanning50_ns_per_txn,
        overhead_x,
        if persist_clean { "CLEAN" } else { "FAIL" }
    );

    // Embedded crash smoke: enumerate frontiers of a spanning workload
    // and sweep random trips; both must see zero torn transactions.
    let frontier = crashsim::spanning_frontier_campaign(2, 0x57A6, if quick { 1 } else { 2 }, 4);
    println!("frontier: {frontier}");
    for v in &frontier.violations {
        eprintln!("  violation: {v}");
    }
    let fuzz = crashsim::pool_fuzz_campaign(SHARDS, 0x57A7, if quick { 20 } else { 60 }, 40);
    println!(
        "fuzz: {} runs, {} crashes, {} violations",
        fuzz.runs,
        fuzz.crashes,
        fuzz.violations.len()
    );
    for v in &fuzz.violations {
        eprintln!("  violation: {v}");
    }

    // BENCH_7.json — machine-readable summary at the repo root. The flat
    // `gate` counters are what `perfgate` diffs in CI: the 0% point is
    // the single-shard fast path and must not drift.
    let gate = Json::obj(vec![
        ("single_shard_ns_per_txn", single_shard_ns_per_txn.into()),
        ("spanning50_ns_per_txn", spanning50_ns_per_txn.into()),
        ("spanning_overhead_x", overhead_x.into()),
    ]);
    let frontier_json = Json::obj(vec![
        ("epochs", frontier.epochs_total.into()),
        ("states", frontier.states_run.into()),
        ("violations", (frontier.violations.len() as u64).into()),
    ]);
    let fuzz_json = Json::obj(vec![
        ("runs", fuzz.runs.into()),
        ("crashes", fuzz.crashes.into()),
        ("violations", (fuzz.violations.len() as u64).into()),
    ]);
    let figure = Json::obj(vec![
        ("figure", "spanning".into()),
        (
            "headers",
            Json::Arr(t.headers().iter().map(|h| (*h).into()).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows()
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        ),
    ]);
    let bench = Json::obj(vec![
        ("bench", "spanning".into()),
        ("quick", quick.into()),
        ("shards", (SHARDS as u64).into()),
        ("persistcheck_clean", persist_clean.into()),
        ("gate", gate),
        ("frontier_campaign", frontier_json),
        ("fuzz_campaign", fuzz_json),
        ("spanning", figure),
    ]);
    let dir = results_dir();
    let root = dir.parent().expect("results dir sits in the repo root");
    let path = root.join("BENCH_7.json");
    fs::write(&path, bench.render()).expect("write BENCH_7.json");
    eprintln!("  [bench] {}", path.display());

    SpanningResult {
        table: t,
        points,
        single_shard_ns_per_txn,
        spanning50_ns_per_txn,
        overhead_x,
        persist_clean,
        frontier,
        fuzz,
    }
}
