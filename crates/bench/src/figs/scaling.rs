//! Scaling figure — sharded pool throughput and flushes/txn vs threads.
//!
//! The paper drives Tinca with multi-threaded Fio; this figure shows what
//! the sharded front-end buys: an `N = 4` pool against an `N = 1` pool at
//! 1–16 worker threads, same total NVM budget, same per-thread workload.
//!
//! * **throughput** (ops per simulated second of parallel wall time):
//!   `N = 1` serialises every commit on one shard clock; `N = 4` spreads
//!   them over four independent sub-region clocks, so wall time is the
//!   *max* shard advance and throughput scales with shards.
//! * **flushes/txn**: group commit batches queued transactions into one
//!   ring commit; more threads per shard → bigger batches → fewer
//!   `clflush`+`sfence` per transaction on the contended pool.
//!
//! Every run traces NVM events; the persist-order analyzer must report
//! zero correctness violations on **each shard's** commit stream.

use blockdev::{DiskKind, SimDisk};
use nvmsim::{shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use tinca::{PoolConfig, TincaConfig, TincaPool};
use workloads::mtfio::{MtFio, MtFioSpec, MtReport};

use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// One measured point of the figure.
pub struct ScalingPoint {
    pub shards: usize,
    pub threads: usize,
    pub report: MtReport,
    /// Persist-order correctness violations summed over shards.
    pub violations: usize,
}

fn build_pool(shards: usize, nvm_bytes: usize) -> (TincaPool, Vec<Nvm>) {
    let devices = shard_devices(
        &NvmConfig::new(nvm_bytes, NvmTech::Pcm).with_tracing(),
        shards,
    );
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let pool = TincaPool::format(
        devices.clone(),
        disk,
        PoolConfig {
            shards,
            cache: TincaConfig {
                ring_bytes: 16 << 10,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, devices)
}

/// Runs one (shards, threads) point: the measured phase plus a per-shard
/// persist-order audit of the full event trace.
pub fn run_point(shards: usize, threads: usize, quick: bool) -> ScalingPoint {
    let nvm_bytes = if quick { 4 << 20 } else { 16 << 20 };
    let (pool, devices) = build_pool(shards, nvm_bytes);
    let spec = MtFioSpec {
        threads,
        read_pct: 30,
        blocks: if quick { 512 } else { 2048 },
        ops_per_thread: if quick { 250 } else { 1500 },
        txn_blocks: 2,
        seed: 0x5CA1 + shards as u64,
    };
    let fio = MtFio::new(spec);
    fio.setup(&pool, if quick { 64 } else { 256 });
    let report = fio.run(&pool);
    pool.flush_all().unwrap();

    let mut violations = 0usize;
    for (s, d) in devices.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(pool.shard_metadata_ranges(s)));
        checker.push_all(&d.take_trace());
        let r = checker.report();
        if !r.is_clean() {
            violations += r.violations.len();
            eprintln!("--- shard {s} ({shards} shards, {threads} threads) ---\n{r}");
        }
    }
    ScalingPoint {
        shards,
        threads,
        report,
        violations,
    }
}

/// Runs the full figure. Returns `(table, speedup, clean)` where `speedup`
/// is N=4 over N=1 throughput at the highest thread count and `clean` is
/// true iff no shard's trace had a persist-order violation.
pub fn run(quick: bool) -> (Table, f64, bool) {
    banner(
        "scaling",
        "Sharded pool: throughput & flushes/txn vs threads (N=1 vs N=4)",
        "N=4 at 8 threads >= 2x N=1 throughput; persistcheck clean per shard",
    );
    let thread_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let mut t = Table::new(&[
        "shards",
        "threads",
        "ops/s",
        "flushes/txn",
        "batched %",
        "wall ms",
        "busy ms",
        "violations",
    ]);
    let mut clean = true;
    // throughput[shard-series][thread-index]
    let mut tput = [[0f64; 5]; 2];
    for (si, &shards) in [1usize, 4].iter().enumerate() {
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let p = run_point(shards, threads, quick);
            clean &= p.violations == 0;
            tput[si][ti] = p.report.ops_per_sec();
            t.row(vec![
                shards.to_string(),
                threads.to_string(),
                fmt(p.report.ops_per_sec()),
                fmt(p.report.flushes_per_txn()),
                fmt(p.report.batched_fraction() * 100.0),
                fmt(p.report.wall_ns as f64 / 1e6),
                fmt(p.report.busy_ns as f64 / 1e6),
                p.violations.to_string(),
            ]);
        }
    }
    let last = thread_counts.len() - 1;
    let speedup = tput[1][last] / tput[0][last].max(f64::MIN_POSITIVE);
    t.print();
    println!(
        "N=4 over N=1 at {} threads: {:.2}x (persistcheck {})",
        thread_counts[last],
        speedup,
        if clean { "CLEAN" } else { "FAIL" }
    );
    write_csv("scaling", &t.headers(), t.rows());
    (t, speedup, clean)
}
