//! Multi-writer scaling figure — lock-free intra-shard commit pipeline
//! vs the mutex+leader/follower baseline (DESIGN §16).
//!
//! Sweeps 1–16 logical writers against `N = 1` and `N = 4` shard pools,
//! running the **identical** lane-disjoint transaction stream (same RNG
//! streams, same blocks, same fills) through both commit paths:
//!
//! * **mutex** — `CommitMode::MutexGroup`, every transaction through the
//!   blocking `commit()`; with one OS thread driving the round-robin the
//!   shard serialises the full per-transaction cost (the c = 1 service
//!   model of the open-loop tier).
//! * **lockfree** — `CommitMode::LockFreeRing` via the steppable window
//!   API: each round reserves one window per writer, stages payloads on
//!   private clocks (overlapped), publishes in rotated order and lets
//!   one sequencer round retire the whole batch with a single fence.
//!
//! The headline gate is the single-shard speedup at 8 writers: the
//! pipeline must reach **≥ 2x** the mutex baseline's commit throughput,
//! and the uncontended 1-writer ring cost must not drift (both gated via
//! `BENCH_9.json`). Every point runs on traced devices and must pass the
//! persist-order + HB-race audit per shard *and* on the merged
//! pool-wide trace. The run embeds the multi-writer crash smoke: a
//! random-trip fuzz sweep (200 seeds full, covering crash-mid-
//! publication) and a bounded-exhaustive frontier enumeration over
//! concurrent publication orders — both must be violation-free.

use std::fs;

use blockdev::{DiskKind, SimDisk};
use crashsim::FrontierReport;
use nvmsim::{merge_shard_traces, shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use persistcheck::{CheckConfig, Checker};
use telemetry::Json;
use tinca::{CommitMode, PoolConfig, TincaConfig, TincaPool};
use workloads::mtfio::{MtFio, MtFioSpec, MtReport};

use crate::table::Table;
use crate::{banner, fmt, results_dir, write_csv};

/// One measured (shards, writers, mode) point.
pub struct MwPoint {
    pub shards: usize,
    pub writers: usize,
    pub lockfree: bool,
    pub report: MtReport,
    /// Commit cost under the mode's service model: contended wall time
    /// for the mutex path, parallel wall time for the pipeline.
    pub ns_per_txn: f64,
    /// Persist-order + race violations over per-shard and merged traces.
    pub violations: usize,
}

/// Everything the figure produced (for the bin's acceptance checks).
pub struct MwScalingResult {
    pub table: Table,
    /// Single-shard lock-free over mutex throughput at 8 writers.
    pub speedup_x_8w: f64,
    /// Uncontended (1 writer, 1 shard) ring-path commit cost.
    pub mw_ns_per_txn_1w: f64,
    pub persist_clean: bool,
    pub fuzz: crashsim::PoolFuzzReport,
    pub frontier: FrontierReport,
}

fn build_pool(shards: usize, lockfree: bool, quick: bool) -> (TincaPool, Vec<Nvm>) {
    let per_shard = if quick { 2 << 20 } else { 4 << 20 };
    let devices = shard_devices(
        &NvmConfig::new(shards * per_shard, NvmTech::Pcm).with_tracing(),
        shards,
    );
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let pool = TincaPool::format(
        devices.clone(),
        disk,
        PoolConfig {
            shards,
            commit_mode: if lockfree {
                CommitMode::LockFreeRing
            } else {
                CommitMode::MutexGroup
            },
            cache: TincaConfig {
                ring_bytes: 16 << 10,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, devices)
}

/// Runs one point: the lane workload through the chosen commit path,
/// then the persist-order audit of each shard's trace and the merged
/// pool trace.
fn run_point(shards: usize, writers: usize, lockfree: bool, quick: bool) -> MwPoint {
    let (pool, devices) = build_pool(shards, lockfree, quick);
    let spec = MtFioSpec {
        threads: writers,
        read_pct: 0, // a pure commit-path figure
        blocks: if quick { 512 } else { 2048 },
        ops_per_thread: if quick { 150 } else { 800 },
        txn_blocks: 2,
        seed: 0x3757_0009 + shards as u64,
    };
    let fio = MtFio::new(spec);
    let report = if lockfree {
        fio.run_multi_writer(&pool)
    } else {
        fio.run_lanes_blocking(&pool)
    };
    pool.flush_all().expect("quiesce after measured phase");

    // The mutex path serialises writers behind the shard lock — its
    // honest cost is the contention-aware wall time. The pipeline's
    // overlap is what the shard clocks already model.
    let wall = if lockfree {
        report.wall_ns
    } else {
        report.contended_wall_ns
    };
    let ns_per_txn = wall as f64 / report.write_txns.max(1) as f64;

    let mut violations = 0usize;
    let traces: Vec<_> = devices.iter().map(|d| d.take_trace()).collect();
    let ranges: Vec<_> = (0..shards).map(|s| pool.shard_metadata_ranges(s)).collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(ranges[s].clone()));
        checker.push_all(trace);
        let r = checker.report();
        if !r.is_clean() {
            violations += r.violations.len();
            eprintln!(
                "--- shard {s} ({shards} shards, {writers} writers, lockfree={lockfree}) ---\n{r}"
            );
        }
    }
    let shard_capacity = devices[0].capacity();
    let merged_ranges: Vec<_> = ranges
        .iter()
        .enumerate()
        .flat_map(|(s, rs)| {
            let base = s * shard_capacity;
            rs.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let r = checker.report();
    if !r.is_clean() {
        violations += r.violations.len();
        eprintln!(
            "--- merged trace ({shards} shards, {writers} writers, lockfree={lockfree}) ---\n{r}"
        );
    }

    MwPoint {
        shards,
        writers,
        lockfree,
        report,
        ns_per_txn,
        violations,
    }
}

/// Runs the figure: the writer sweep on both pools and both commit
/// paths, the embedded multi-writer crash campaigns, and `BENCH_9.json`.
pub fn run(quick: bool) -> MwScalingResult {
    banner(
        "mw_scaling",
        "Multi-writer commit: lock-free ring pipeline vs mutex baseline, 1-16 writers",
        ">=2x single-shard throughput at 8 writers; persistcheck clean; mw crash campaigns clean",
    );
    let writer_counts: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let mut t = Table::new(&[
        "shards",
        "writers",
        "mode",
        "ns/txn",
        "ktxn/s",
        "group %",
        "speedup x",
        "violations",
    ]);
    let mut persist_clean = true;
    let mut speedup_x_8w = 0.0f64;
    let mut mw_ns_per_txn_1w = 0.0f64;
    let mut mutex_ns_per_txn_8w = 0.0f64;
    let mut mw_ns_per_txn_8w = 0.0f64;
    for &shards in &[1usize, 4] {
        for &writers in writer_counts {
            let mutex = run_point(shards, writers, false, quick);
            let ring = run_point(shards, writers, true, quick);
            persist_clean &= mutex.violations == 0 && ring.violations == 0;
            let speedup = mutex.ns_per_txn / ring.ns_per_txn.max(f64::MIN_POSITIVE);
            if shards == 1 && writers == 8 {
                speedup_x_8w = speedup;
                mutex_ns_per_txn_8w = mutex.ns_per_txn;
                mw_ns_per_txn_8w = ring.ns_per_txn;
            }
            if shards == 1 && writers == 1 {
                mw_ns_per_txn_1w = ring.ns_per_txn;
            }
            for p in [&mutex, &ring] {
                t.row(vec![
                    shards.to_string(),
                    writers.to_string(),
                    if p.lockfree { "lockfree" } else { "mutex" }.to_string(),
                    fmt(p.ns_per_txn),
                    fmt(1e6 / p.ns_per_txn),
                    fmt(p.report.batched_fraction() * 100.0),
                    if p.lockfree {
                        format!("{speedup:.2}")
                    } else {
                        "-".to_string()
                    },
                    p.violations.to_string(),
                ]);
            }
        }
    }
    t.print();
    println!(
        "single shard at 8 writers: mutex {:.0} ns/txn, lockfree {:.0} ns/txn -> {:.2}x \
         (persistcheck {})",
        mutex_ns_per_txn_8w,
        mw_ns_per_txn_8w,
        speedup_x_8w,
        if persist_clean { "CLEAN" } else { "FAIL" }
    );
    write_csv("mw_scaling", &t.headers(), t.rows());

    // Embedded crash smoke over the concurrent commit path: random-trip
    // fuzz (200 seeds full — the acceptance sweep, crash-mid-publication
    // included) and bounded-exhaustive frontier enumeration over
    // publication orders.
    let fuzz = crashsim::mw_pool_fuzz_campaign(2, 0x3757_B9_00, if quick { 40 } else { 200 }, 20);
    println!(
        "mw fuzz: {} runs, {} crashes, {} violations",
        fuzz.runs,
        fuzz.crashes,
        fuzz.violations.len()
    );
    for v in &fuzz.violations {
        eprintln!("  violation: {v}");
    }
    let frontier = crashsim::mw_frontier_campaign(2, 0x3757_B9_01, if quick { 3 } else { 4 }, 6);
    println!("mw frontier: {frontier}");
    for v in &frontier.violations {
        eprintln!("  violation: {v}");
    }

    // BENCH_9.json — machine-readable summary for perfgate: the 8-writer
    // speedup must not shrink and the uncontended ring cost must not
    // drift.
    let gate = Json::obj(vec![
        ("mw_speedup_x_8w", speedup_x_8w.into()),
        ("mw_ns_per_txn_1w", mw_ns_per_txn_1w.into()),
        ("mutex_ns_per_txn_8w", mutex_ns_per_txn_8w.into()),
        ("mw_ns_per_txn_8w", mw_ns_per_txn_8w.into()),
    ]);
    let fuzz_json = Json::obj(vec![
        ("runs", fuzz.runs.into()),
        ("crashes", fuzz.crashes.into()),
        ("violations", (fuzz.violations.len() as u64).into()),
    ]);
    let frontier_json = Json::obj(vec![
        ("epochs", frontier.epochs_total.into()),
        ("states", frontier.states_run.into()),
        ("violations", (frontier.violations.len() as u64).into()),
    ]);
    let figure = Json::obj(vec![
        ("figure", "mw_scaling".into()),
        (
            "headers",
            Json::Arr(t.headers().iter().map(|h| (*h).into()).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows()
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        ),
    ]);
    let bench = Json::obj(vec![
        ("bench", "mw_scaling".into()),
        ("quick", quick.into()),
        ("persistcheck_clean", persist_clean.into()),
        ("gate", gate),
        ("fuzz_campaign", fuzz_json),
        ("frontier_campaign", frontier_json),
        ("mw_scaling", figure),
    ]);
    let dir = results_dir();
    let root = dir.parent().expect("results dir sits in the repo root");
    let path = root.join("BENCH_9.json");
    fs::write(&path, bench.render()).expect("write BENCH_9.json");
    eprintln!("  [bench] {}", path.display());

    MwScalingResult {
        table: t,
        speedup_x_8w,
        mw_ns_per_txn_1w,
        persist_clean,
        fuzz,
        frontier,
    }
}
