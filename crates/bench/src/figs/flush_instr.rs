//! Flush-instruction ablation (§2.1: "New cache line flush instructions
//! (clflushopt and clwb) have been proposed to substitute clflush but
//! still bring in overheads").
//!
//! Runs the same Fio write mix on the Tinca stack under `clflush`,
//! `clflushopt`, and `clwb`. The ordering the paper predicts: each
//! successor is cheaper, but none is free — commit cost stays dominated by
//! the media write itself.

use fssim::stack::{build, System};
use nvmsim::{FlushInstr, NvmConfig};
use workloads::fio::{Fio, FioSpec};

use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

pub fn run(quick: bool) -> Table {
    banner(
        "Flush instructions (§2.1)",
        "Tinca under clflush / clflushopt / clwb",
        "successors cheaper but not free; clwb additionally keeps flushed lines readable at cache speed",
    );
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let mut t = Table::new(&[
        "Instruction",
        "write IOPS",
        "vs clflush",
        "NVM line reads/op",
    ]);
    let mut base = 0.0f64;
    for instr in [
        FlushInstr::Clflush,
        FlushInstr::Clflushopt,
        FlushInstr::Clwb,
    ] {
        let mut cfg = local_cfg(System::Tinca, quick);
        cfg.nvm_override =
            Some(NvmConfig::new(cfg.nvm_bytes, cfg.nvm_tech).with_flush_instr(instr));
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(FioSpec {
            read_pct: 30,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops,
            fsync_every: 64,
            seed: 0xF1,
        });
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        if base == 0.0 {
            base = r.ops_per_sec();
        }
        t.row(vec![
            instr.name().into(),
            fmt(r.ops_per_sec()),
            format!("{:+.1}%", (r.ops_per_sec() / base - 1.0) * 100.0),
            fmt(r.nvm.lines_read as f64 / r.ops as f64),
        ]);
    }
    t.print();
    write_csv("flush_instr", &t.headers(), t.rows());
    t
}
