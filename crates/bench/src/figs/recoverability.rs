//! §5.1 recoverability — the power-pull experiment, mechanised as a crash
//! fuzz campaign.

use crashsim::{fuzz_system_opts, FailureMode};
use fssim::stack::System;

use crate::table::Table;
use crate::{banner, write_csv};

/// Fuzzes both systems with crashes at random persistence events and
/// adversarial write-back resolution. Paper: "Each time Tinca can recover
/// and crash consistency of the system is never impaired."
pub fn run(quick: bool) -> Table {
    banner(
        "Recoverability (§5.1)",
        "Crash-fuzz campaign: random power cuts + adversarial write-back resolution",
        "zero consistency violations for Tinca (and for Classic's JBD2 stack)",
    );
    let runs: u64 = if quick { 10 } else { 40 };
    let mut t = Table::new(&["System", "runs", "mid-run crashes", "violations"]);
    for (sys, seed, destage) in [
        (System::Tinca, 51_000u64, false),
        (System::Classic, 52_000, false),
        // The write-behind pipeline on a shrunken cache: crashes land
        // during background destage batches too.
        (System::Tinca, 53_000, true),
    ] {
        let report = fuzz_system_opts(sys, seed, runs, 60, FailureMode::PowerPull, destage);
        let label = if destage {
            format!("{}+destage", sys.name())
        } else {
            sys.name().to_string()
        };
        t.row(vec![
            label,
            report.runs.to_string(),
            report.crashes.to_string(),
            report.violations.len().to_string(),
        ]);
        for v in &report.violations {
            println!("  !! {v}");
        }
    }
    t.print();
    write_csv("recoverability", &t.headers(), t.rows());
    t
}
