//! Figure 12 — sensitivity to disk medium, NVM medium, and the resulting
//! cache write hit rates (§5.4.1–5.4.2), all under TPC-C with 20 users.

use blockdev::DiskKind;
use fssim::stack::System;
use nvmsim::NvmTech;

use crate::figs::fig8::run_one;
use crate::figs::local_cfg;
use crate::table::Table;
use crate::{banner, fmt, write_csv};

/// Fig. 12(a): TPM on SSD vs HDD. Paper: both systems drop on HDD
/// (Classic ≈ 5×, Tinca ≈ 3×); the Tinca/Classic gap widens from 1.7× to
/// 2.8× because avoided disk writes matter more on slow disks.
pub fn fig12a(quick: bool) -> Table {
    banner(
        "Fig 12(a)",
        "TPC-C (20 users) on SSD vs HDD",
        "gap widens on HDD: ~1.7x (SSD) -> ~2.8x (HDD)",
    );
    let txns: u64 = if quick { 400 } else { 2_000 };
    let mut t = Table::new(&["Disk", "System", "TPM", "ratio"]);
    for kind in [DiskKind::Ssd, DiskKind::Hdd] {
        let mut tpm = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let mut cfg = local_cfg(sys, quick);
            cfg.disk_kind = kind;
            let (r, _, _) = run_one(&cfg, 20, txns);
            tpm.push(r.ops_per_min());
            let ratio = if tpm.len() == 2 {
                format!("{:.2}x", tpm[1] / tpm[0])
            } else {
                String::new()
            };
            t.row(vec![
                kind.name().into(),
                sys.name().into(),
                fmt(r.ops_per_min()),
                ratio,
            ]);
        }
    }
    t.print();
    write_csv("fig12a", &t.headers(), t.rows());
    t
}

/// Fig. 12(b): TPM on PCM vs NVDIMM vs STT-RAM (SSD disk). Paper: faster
/// NVM lifts both; the gap narrows slightly (1.7× → 1.6×).
pub fn fig12b(quick: bool) -> Table {
    banner(
        "Fig 12(b)",
        "TPC-C (20 users) on PCM / NVDIMM / STT-RAM",
        "both rise with faster NVM; gap narrows slightly 1.7x -> 1.6x",
    );
    let txns: u64 = if quick { 400 } else { 2_000 };
    let mut t = Table::new(&["NVM", "System", "TPM", "ratio"]);
    for tech in [NvmTech::Pcm, NvmTech::SttRam, NvmTech::Nvdimm] {
        let mut tpm = Vec::new();
        for sys in [System::Classic, System::Tinca] {
            let mut cfg = local_cfg(sys, quick);
            cfg.nvm_tech = tech;
            let (r, _, _) = run_one(&cfg, 20, txns);
            tpm.push(r.ops_per_min());
            let ratio = if tpm.len() == 2 {
                format!("{:.2}x", tpm[1] / tpm[0])
            } else {
                String::new()
            };
            t.row(vec![
                tech.name().into(),
                sys.name().into(),
                fmt(r.ops_per_min()),
                ratio,
            ]);
        }
    }
    t.print();
    write_csv("fig12b", &t.headers(), t.rows());
    t
}

/// Fig. 12(c): cache write hit rate under TPC-C (20 users). Paper:
/// Classic 80 %, Tinca 93 % — the double writes waste Classic's cache
/// space.
pub fn fig12c(quick: bool) -> Table {
    banner(
        "Fig 12(c)",
        "Cache write hit rate, TPC-C 20 users",
        "Classic ~80%, Tinca ~93%",
    );
    let txns: u64 = if quick { 400 } else { 2_000 };
    let mut t = Table::new(&["System", "write hit rate"]);
    for sys in [System::Classic, System::Tinca] {
        let (_, hit, _) = run_one(&local_cfg(sys, quick), 20, txns);
        t.row(vec![sys.name().into(), format!("{:.1}%", hit * 100.0)]);
    }
    t.print();
    write_csv("fig12c", &t.headers(), t.rows());
    t
}
