//! Criterion micro-benchmarks of whole-stack file operations: the same
//! FS op on the Tinca and Classic stacks, measuring the real per-op
//! implementation work (simulated-time effects are covered by the figure
//! harnesses).

use blockdev::BLOCK_SIZE;
use criterion::{criterion_group, criterion_main, Criterion};
use fssim::stack::{build, Stack, StackConfig, System};

fn stack(sys: System) -> Stack {
    let mut cfg = StackConfig::tiny(sys);
    cfg.nvm_bytes = 16 << 20;
    cfg.disk_blocks = 1 << 17;
    cfg.max_files = 8 << 10;
    build(&cfg).unwrap()
}

fn bench_file_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_write_16k");
    for sys in [System::Tinca, System::Classic, System::Ubj] {
        group.bench_function(sys.name(), |b| {
            let mut s = stack(sys);
            let f = s.fs.create("bench.dat").unwrap();
            s.fs.write(f, 0, &vec![1u8; 512 * BLOCK_SIZE]).unwrap();
            s.fs.fsync().unwrap();
            let data = vec![2u8; 16 << 10];
            let mut i = 0u64;
            b.iter(|| {
                s.fs.write(f, (i % 500) * BLOCK_SIZE as u64, &data).unwrap();
                i += 1;
                if i.is_multiple_of(64) {
                    s.fs.fsync().unwrap();
                }
            });
        });
    }
    group.finish();
}

fn bench_file_read_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_read_16k_hit");
    for sys in [System::Tinca, System::Classic] {
        group.bench_function(sys.name(), |b| {
            let mut s = stack(sys);
            let f = s.fs.create("bench.dat").unwrap();
            s.fs.write(f, 0, &vec![1u8; 128 * BLOCK_SIZE]).unwrap();
            s.fs.fsync().unwrap();
            let mut buf = vec![0u8; 16 << 10];
            let mut i = 0u64;
            b.iter(|| {
                s.fs.read(f, (i % 120) * BLOCK_SIZE as u64, &mut buf)
                    .unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_create_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_create_delete");
    group.sample_size(20);
    for sys in [System::Tinca, System::Classic] {
        group.bench_function(sys.name(), |b| {
            let mut s = stack(sys);
            let mut i = 0u64;
            b.iter(|| {
                let name = format!("churn-{i}");
                let f = s.fs.create(&name).unwrap();
                s.fs.write(f, 0, &[7u8; 4096]).unwrap();
                s.fs.delete(&name).unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_file_write, bench_file_read_hit, bench_create_delete
);
criterion_main!(benches);
