//! Criterion micro-benchmarks comparing the two caches' per-operation
//! mechanics: Tinca's 16 B atomic cache-entry update vs Classic's 4 KB
//! metadata-block rewrite (§4.2 vs §3.2), and the read paths.

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use classic::{ClassicCache, ClassicConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig};

fn nvm_disk() -> (nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(64 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock);
    (nvm, disk)
}

fn bench_single_block_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_block_write");
    group.bench_function("tinca_txn_commit", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = TincaCache::format(nvm, disk, TincaConfig::default());
        let payload = [3u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            let mut txn = cache.init_txn();
            txn.write(i % 4096, &payload);
            cache.commit(&txn).unwrap();
            i += 1;
        });
    });
    group.bench_function("classic_sync_meta", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = ClassicCache::format(nvm, disk, ClassicConfig::default());
        let payload = [4u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            cache.write(i % 4096, &payload).unwrap();
            i += 1;
        });
    });
    group.bench_function("classic_no_meta", |b| {
        let (nvm, disk) = nvm_disk();
        let cfg = ClassicConfig {
            sync_metadata: false,
            ..ClassicConfig::default()
        };
        let mut cache = ClassicCache::format(nvm, disk, cfg);
        let payload = [5u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            cache.write(i % 4096, &payload).unwrap();
            i += 1;
        });
    });
    group.bench_function("ubj_txn_commit", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = ubj::UbjCache::format(nvm, disk, ubj::UbjConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            cache
                .commit_txn(&[(i % 4096, Box::new([6u8; BLOCK_SIZE]))])
                .unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_read_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_hit");
    group.bench_function("tinca", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = TincaCache::format(nvm, disk, TincaConfig::default());
        let payload = [6u8; BLOCK_SIZE];
        let mut seed = cache.init_txn();
        for i in 0..512u64 {
            seed.write(i, &payload);
        }
        cache.commit(&seed).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            cache.read(i % 512, &mut buf).unwrap();
            i += 1;
        });
    });
    group.bench_function("classic", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = ClassicCache::format(nvm, disk, ClassicConfig::default());
        let payload = [7u8; BLOCK_SIZE];
        for i in 0..512u64 {
            cache.write(i, &payload).unwrap();
        }
        let mut buf = [0u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            cache.read(i % 512, &mut buf).unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_eviction_pressure(c: &mut Criterion) {
    // Writes over a range 4× the cache: every operation replaces a block.
    let mut group = c.benchmark_group("eviction_pressure");
    group.sample_size(10);
    group.bench_function("tinca", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = TincaCache::format(nvm, disk, TincaConfig::default());
        let blocks = cache.data_block_count() as u64 * 4;
        let payload = [8u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            let mut txn = cache.init_txn();
            txn.write((i * 17) % blocks, &payload);
            cache.commit(&txn).unwrap();
            i += 1;
        });
    });
    group.bench_function("classic", |b| {
        let (nvm, disk) = nvm_disk();
        let mut cache = ClassicCache::format(nvm, disk, ClassicConfig::default());
        let blocks = cache.layout().num_blocks as u64 * 4;
        let payload = [9u8; BLOCK_SIZE];
        let mut i = 0u64;
        b.iter(|| {
            cache.write((i * 17) % blocks, &payload).unwrap();
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_block_write, bench_read_hit, bench_eviction_pressure
);
criterion_main!(benches);
