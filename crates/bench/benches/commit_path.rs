//! Criterion micro-benchmarks of the commit path: Tinca's transactional
//! commit vs the journal-style double write, across transaction sizes.
//! These back the paper's §4 design claims with host-time measurements of
//! the actual implementation (the figure harnesses measure simulated
//! time; here we measure the real data-structure work).

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig};

fn build_cache(role_switch: bool) -> TincaCache {
    build_cache_cfg(TincaConfig {
        ring_bytes: 256 << 10,
        role_switch,
        ..TincaConfig::default()
    })
}

fn build_cache_cfg(cfg: TincaConfig) -> TincaCache {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(64 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock);
    TincaCache::format(nvm, disk, cfg)
}

fn bench_commit_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_txn_size");
    for &blocks in &[1usize, 8, 64, 256] {
        group.throughput(Throughput::Bytes((blocks * BLOCK_SIZE) as u64));
        group.bench_with_input(BenchmarkId::new("tinca", blocks), &blocks, |b, &n| {
            let mut cache = build_cache(true);
            let payload = [0x5Au8; BLOCK_SIZE];
            let mut round = 0u64;
            b.iter(|| {
                let mut txn = cache.init_txn();
                for i in 0..n as u64 {
                    // Rotate block numbers so hits and misses both occur.
                    txn.write((round * 7 + i) % 4096, &payload);
                }
                cache.commit(&txn).unwrap();
                round += 1;
            });
        });
    }
    group.finish();
}

fn bench_role_switch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("role_switch_ablation");
    for (name, role_switch) in [("role_switch", true), ("double_write", false)] {
        group.bench_function(name, |b| {
            let mut cache = build_cache(role_switch);
            let payload = [0xA5u8; BLOCK_SIZE];
            let mut round = 0u64;
            b.iter(|| {
                let mut txn = cache.init_txn();
                for i in 0..16u64 {
                    txn.write((round * 3 + i) % 2048, &payload);
                }
                cache.commit(&txn).unwrap();
                round += 1;
            });
        });
    }
    group.finish();
}

fn bench_commit_hit_vs_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_hit_vs_miss");
    group.bench_function("all_hits_cow", |b| {
        let mut cache = build_cache(true);
        let payload = [1u8; BLOCK_SIZE];
        // Pre-populate so every commit is a COW write hit.
        let mut seed = cache.init_txn();
        for i in 0..64u64 {
            seed.write(i, &payload);
        }
        cache.commit(&seed).unwrap();
        b.iter(|| {
            let mut txn = cache.init_txn();
            for i in 0..64u64 {
                txn.write(i, &payload);
            }
            cache.commit(&txn).unwrap();
        });
    });
    group.bench_function("all_misses_fresh", |b| {
        let mut cache = build_cache(true);
        let payload = [2u8; BLOCK_SIZE];
        let mut next = 0u64;
        b.iter(|| {
            let mut txn = cache.init_txn();
            for _ in 0..64 {
                txn.write(next, &payload);
                next += 1;
            }
            cache.commit(&txn).unwrap();
        });
    });
    group.finish();
}

fn bench_ring_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_batching");
    for (name, batched) in [("per_block_head", false), ("batched_head", true)] {
        group.bench_function(name, |b| {
            let mut cache = build_cache_cfg(TincaConfig {
                ring_bytes: 256 << 10,
                batched_ring: batched,
                ..TincaConfig::default()
            });
            let payload = [0x77u8; BLOCK_SIZE];
            let mut round = 0u64;
            b.iter(|| {
                let mut txn = cache.init_txn();
                for i in 0..32u64 {
                    txn.write((round * 5 + i) % 2048, &payload);
                }
                cache.commit(&txn).unwrap();
                round += 1;
            });
        });
    }
    group.finish();
}

fn bench_flush_coalescing(c: &mut Criterion) {
    // Host-time cost of the stage+ring hot path with per-line flushes vs
    // the cache-line dedup pass (the dedup set is extra DRAM work per
    // commit; the elided clflushes are simulated time, not host time —
    // this group bounds what the bookkeeping itself costs).
    let mut group = c.benchmark_group("flush_coalescing");
    for (name, coalesce) in [("per_line_flush", false), ("coalesced_flush", true)] {
        group.bench_function(name, |b| {
            let mut cache = build_cache_cfg(TincaConfig {
                ring_bytes: 256 << 10,
                coalesce_flushes: coalesce,
                ..TincaConfig::default()
            });
            let payload = [0x3Cu8; BLOCK_SIZE];
            let mut round = 0u64;
            b.iter(|| {
                let mut txn = cache.init_txn();
                for i in 0..32u64 {
                    txn.write((round * 5 + i) % 2048, &payload);
                }
                cache.commit(&txn).unwrap();
                round += 1;
            });
        });
    }
    group.finish();
}

fn bench_destage_pipeline(c: &mut Criterion) {
    // Commit under steady eviction pressure (working set 2× the cache):
    // synchronous victim writeback on the allocation path vs the
    // watermark daemon's batched background writeback.
    let mut group = c.benchmark_group("destage_pipeline");
    for (name, destage) in [("sync_writeback", false), ("write_behind", true)] {
        group.bench_function(name, |b| {
            let clock = SimClock::new();
            let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
            let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock);
            let mut cache = TincaCache::format(
                nvm,
                disk,
                TincaConfig {
                    ring_bytes: 4096,
                    destage,
                    coalesce_flushes: destage,
                    ..TincaConfig::default()
                },
            );
            let span = cache.data_block_count() as u64 * 2;
            let payload = [0xC3u8; BLOCK_SIZE];
            let mut round = 0u64;
            b.iter(|| {
                let mut txn = cache.init_txn();
                for i in 0..4u64 {
                    txn.write((round * 13 + i) % span, &payload);
                }
                cache.commit(&txn).unwrap();
                round += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_commit_sizes, bench_role_switch_ablation, bench_commit_hit_vs_miss,
        bench_ring_batching, bench_flush_coalescing, bench_destage_pipeline
);
criterion_main!(benches);
