//! Criterion micro-benchmarks of the recovery path (§4.5): full-entry
//! scan + DRAM rebuild time as a function of cache size and of how much
//! revocation work the crash left behind.

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig};

/// Builds a crashed NVM image with `fill` fraction of the cache populated.
fn crashed_image(nvm_bytes: usize, fill_pct: u32) -> (nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(nvm_bytes, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock);
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), TincaConfig::default());
    let n = cache.data_block_count() as u64 * fill_pct as u64 / 100;
    let payload = [1u8; BLOCK_SIZE];
    let mut i = 0u64;
    while i < n {
        let mut txn = cache.init_txn();
        for _ in 0..64.min(n - i) {
            txn.write(i, &payload);
            i += 1;
        }
        cache.commit(&txn).unwrap();
    }
    drop(cache);
    nvm.crash(CrashPolicy::LoseVolatile);
    (nvm, disk)
}

fn bench_recovery_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_scan");
    group.sample_size(10);
    for &mb in &[8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("clean_cache", mb), &mb, |b, &mb| {
            let (nvm, disk) = crashed_image(mb << 20, 80);
            b.iter(|| {
                let cache =
                    TincaCache::recover(nvm.clone(), disk.clone(), TincaConfig::default()).unwrap();
                assert!(cache.cached_blocks() > 0);
            });
        });
    }
    group.finish();
}

fn bench_recovery_with_revocation(c: &mut Criterion) {
    // Crash mid-commit so recovery must walk the ring and revoke.
    let mut group = c.benchmark_group("recovery_revocation");
    group.sample_size(10);
    group.bench_function("interrupted_txn_64_blocks", |b| {
        crashsim::quiet_crash_panics();
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(16 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock);
        let mut cache = TincaCache::format(nvm.clone(), disk.clone(), TincaConfig::default());
        let payload = [2u8; BLOCK_SIZE];
        let mut seed = cache.init_txn();
        for i in 0..64u64 {
            seed.write(i, &payload);
        }
        cache.commit(&seed).unwrap();
        // Interrupt an update of all 64 blocks near its end.
        let mut txn = cache.init_txn();
        for i in 0..64u64 {
            txn.write(i, &payload);
        }
        nvm.set_trip(Some(4300));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.commit(&txn)));
        nvm.set_trip(None);
        drop(cache);
        nvm.crash(CrashPolicy::LoseVolatile);
        b.iter(|| {
            let cache =
                TincaCache::recover(nvm.clone(), disk.clone(), TincaConfig::default()).unwrap();
            criterion::black_box(cache.stats().revoked_blocks);
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recovery_scan, bench_recovery_with_revocation
);
criterion_main!(benches);
