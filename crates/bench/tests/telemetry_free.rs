//! Telemetry must be observationally free: running the same workload with
//! the recorder installed may not perturb a single simulated-time or
//! device counter. Spans only *read* the shared clock, so the disabled
//! and enabled runs must be bit-for-bit identical in everything the
//! figures report.

use bench::figs::local_cfg;
use fssim::stack::{build, System};
use workloads::fio::{Fio, FioSpec};
use workloads::report::RunReport;

/// A scaled-down Fig. 7 cell (Tinca, R/W 3/7) — the commit-heavy mix,
/// which exercises the most heavily instrumented path in the stack.
fn fig7_cell() -> RunReport {
    let mut cfg = local_cfg(System::Tinca, true);
    cfg.nvm_bytes = 4 << 20; // keep the test < 1 s
    let mut stack = build(&cfg).unwrap();
    let mut fio = Fio::new(FioSpec {
        read_pct: 30,
        file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
        req_bytes: 4096,
        ops: 1_500,
        fsync_every: 64,
        seed: 0x07,
    });
    fio.setup(&mut stack);
    fio.run(&mut stack)
}

/// Every figure-visible number — sim time, NVM line/flush/fence counts,
/// disk read/write counts, FS stats, cache hit/miss counters — rendered
/// to one comparable string. `RunReport` is a plain data struct, so its
/// `Debug` form covers every field bit-for-bit.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "{:?} iops={} clflush={} diskw={}",
        r,
        r.ops_per_sec(),
        r.clflush_per_op(),
        r.disk_writes_per_op()
    )
}

#[test]
fn telemetry_off_and_on_are_bit_identical() {
    // Baseline: no recorder installed.
    let off = fingerprint(&fig7_cell());

    // Same workload under a recording session. The workload builds its
    // own stack/clock, so record() gets a throwaway clock — what matters
    // is that the instrumentation fires (the phase tree is non-trivial)
    // while the measured run stays untouched.
    let probe = telemetry::SimClock::new();
    let (on, report) = telemetry::record(&probe, telemetry::Config::with_events(), || {
        fingerprint(&fig7_cell())
    });

    assert!(
        report.phases.len() > 1,
        "instrumentation did not fire — the enabled run measured nothing"
    );
    assert_eq!(
        off, on,
        "telemetry perturbed the workload: device/FS counters diverged"
    );

    // And the baseline itself is deterministic, so the comparison above
    // is meaningful (a flaky workload would make any diff ambiguous).
    let off2 = fingerprint(&fig7_cell());
    assert_eq!(off, off2, "workload is not deterministic run-to-run");
}
