//! Smoke tests for the harness plumbing (the heavy figure runs are
//! exercised by `run_all`; here we keep the cheap paths under `cargo
//! test`).

#[test]
fn tables_render_and_write_csv() {
    let t1 = bench::figs::tables::table1();
    assert_eq!(t1.rows().len(), 4, "four NVM technologies");
    let t2 = bench::figs::tables::table2();
    assert_eq!(t2.rows().len(), 6, "six benchmarks");
    // CSVs landed.
    let dir = bench::results_dir();
    assert!(dir.join("table1.csv").exists());
    assert!(dir.join("table2.csv").exists());
}

#[test]
fn fmt_is_compact() {
    assert_eq!(bench::fmt(0.0), "0");
    assert_eq!(bench::fmt(3.46159), "3.46");
    assert_eq!(bench::fmt(42.123), "42.1");
    assert_eq!(bench::fmt(12345.6), "12346");
}

#[test]
fn local_cfgs_scale_down_in_quick_mode() {
    use fssim::stack::System;
    let full = bench::figs::local_cfg(System::Tinca, false);
    let quick = bench::figs::local_cfg(System::Tinca, true);
    assert!(quick.nvm_bytes < full.nvm_bytes);
    let cfull = bench::figs::cluster_cfg(System::Classic, false);
    let cquick = bench::figs::cluster_cfg(System::Classic, true);
    assert!(cquick.nvm_bytes < cfull.nvm_bytes);
}
