//! Property: analyzer verdicts are identical whether the device trace is
//! drained in chunks via repeated `take_trace()` (seq continuity across
//! `TraceBuf::base`) or consumed as one whole trace at the end.

use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use persistcheck::{check, CheckConfig, Checker, Report};
use proptest::prelude::*;

/// One scripted device op: (discriminant, line index, length).
type Step = (u8, usize, usize);

fn apply(d: &nvmsim::Nvm, &(op, line, len): &Step) {
    let addr = line * 64;
    match op % 6 {
        0 => d.write(addr, &vec![0xA5u8; len]),
        1 => d.atomic_write_u64(addr, 0xDEAD_BEEF),
        2 => d.clflush(addr, len),
        3 => d.sfence(),
        4 => {
            d.atomic_write_u64(0, 1);
            d.persist(0, 8);
            d.note_commit(0, 8);
        }
        _ => d.crash(CrashPolicy::LoseVolatile),
    }
}

fn assert_same_verdict(a: &Report, b: &Report) {
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.violations.len(), b.violations.len(), "\nA: {a}\nB: {b}");
    for (va, vb) in a.violations.iter().zip(&b.violations) {
        assert_eq!(va.rule, vb.rule);
        assert_eq!(va.addr, vb.addr);
        assert_eq!(va.events, vb.events, "ordinal citations must match");
    }
    assert_eq!(a.redundant_flushes, b.redundant_flushes);
    assert_eq!(a.redundant_flush_events, b.redundant_flush_events);
    assert_eq!(a.empty_fences, b.empty_fences);
    assert_eq!(a.empty_fence_events, b.empty_fence_events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_take_matches_one_shot_trace(
        script in prop::collection::vec(
            ((0u8..6), (1usize..60), (1usize..128), any::<bool>()),
            1..60,
        ),
    ) {
        let mk = || {
            NvmDevice::new(
                NvmConfig::new(4096, NvmTech::Pcm).with_tracing(),
                SimClock::new(),
            )
        };
        let meta = 0..256;
        let cfg = CheckConfig::with_metadata(vec![meta]);

        // Device A: drained at every scripted drain point (and once more
        // at the end), fed incrementally.
        let a = mk();
        let mut inc = Checker::new(cfg.clone());
        for &(op, line, len, drain) in &script {
            apply(&a, &(op, line, len));
            if drain {
                inc.push_all(&a.take_trace());
            }
        }
        inc.push_all(&a.take_trace());
        let ra = inc.finish();

        // Device B: identical script, one drain at the very end.
        let b = mk();
        for &(op, line, len, _) in &script {
            apply(&b, &(op, line, len));
        }
        let rb = check(&b.take_trace(), cfg);

        assert_same_verdict(&ra, &rb);
    }
}
