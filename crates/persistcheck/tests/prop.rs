//! Property tests tying together nvmsim's crash semantics and the
//! analyzer: for any random store/persist sequence,
//!
//! 1. exactly the `persist()`-covered (word-granular) data survives
//!    `CrashPolicy::LoseVolatile`, byte for byte, per an independent
//!    shadow model, and
//! 2. the analyzer agrees — a sequence whose commits flush everything
//!    first reports zero correctness violations (no false positives).

use nvmsim::{CrashPolicy, Nvm, NvmConfig, NvmDevice, NvmTech, SimClock, CACHE_LINE, WORD_SIZE};
use persistcheck::{check, CheckConfig};
use proptest::collection;
use proptest::prelude::*;

const CAP: usize = 8192;
/// The last 8 bytes serve as the commit record.
const COMMIT_OFF: usize = CAP - 8;

/// Independent byte-level model of the device's persistence semantics:
/// stores are volatile; `persist` makes every dirty word of the covered
/// cache lines durable (flush granularity is the line, application
/// granularity the 8-byte word).
struct Shadow {
    volatile: Vec<u8>,
    durable: Vec<u8>,
    word_dirty: Vec<bool>,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            volatile: vec![0; CAP],
            durable: vec![0; CAP],
            word_dirty: vec![false; CAP / WORD_SIZE],
        }
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        self.volatile[addr..addr + data.len()].copy_from_slice(data);
        for w in addr / WORD_SIZE..=(addr + data.len() - 1) / WORD_SIZE {
            self.word_dirty[w] = true;
        }
    }

    fn persist(&mut self, addr: usize, len: usize) {
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        let words_per_line = CACHE_LINE / WORD_SIZE;
        for line in first..=last {
            for w in line * words_per_line..(line + 1) * words_per_line {
                if self.word_dirty[w] {
                    let b = w * WORD_SIZE;
                    self.durable[b..b + WORD_SIZE]
                        .copy_from_slice(&self.volatile[b..b + WORD_SIZE]);
                    self.word_dirty[w] = false;
                }
            }
        }
    }

    fn crash(&mut self) {
        self.volatile.copy_from_slice(&self.durable);
        self.word_dirty.fill(false);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Write { addr: usize, len: usize, fill: u8 },
    Persist { addr: usize, len: usize },
    AtomicW64 { word: usize, value: u64 },
    Fence,
    Commit { txn: u64 },
    Crash,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..CAP - 64, 1usize..=64, any::<u8>())
            .prop_map(|(addr, len, fill)| Op::Write { addr, len, fill }),
        3 => (0usize..CAP - 64, 1usize..=128)
            .prop_map(|(addr, len)| Op::Persist { addr, len }),
        2 => (0usize..CAP / 8, any::<u64>())
            .prop_map(|(word, value)| Op::AtomicW64 { word, value }),
        1 => Just(Op::Fence),
        1 => (1u64..1000).prop_map(|txn| Op::Commit { txn }),
        1 => Just(Op::Crash),
    ]
}

fn device() -> Nvm {
    NvmDevice::new(
        NvmConfig::new(CAP, NvmTech::Pcm).with_tracing(),
        SimClock::new(),
    )
}

/// A well-behaved commit: flush everything outstanding, fence, then
/// persist the commit record and annotate.
fn commit(d: &Nvm, shadow: &mut Shadow, txn: u64) {
    d.persist(0, CAP);
    shadow.persist(0, CAP);
    d.atomic_write_u64(COMMIT_OFF, txn);
    shadow.write(COMMIT_OFF, &txn.to_le_bytes());
    d.persist(COMMIT_OFF, 8);
    shadow.persist(COMMIT_OFF, 8);
    d.note_commit(COMMIT_OFF, 8);
}

fn apply(d: &Nvm, shadow: &mut Shadow, op: &Op) {
    match *op {
        Op::Write { addr, len, fill } => {
            let len = len.min(CAP - addr);
            let data = vec![fill; len];
            d.write(addr, &data);
            shadow.write(addr, &data);
        }
        Op::Persist { addr, len } => {
            let len = len.min(CAP - addr);
            d.persist(addr, len);
            shadow.persist(addr, len);
        }
        Op::AtomicW64 { word, value } => {
            let addr = word * 8;
            d.atomic_write_u64(addr, value);
            shadow.write(addr, &value.to_le_bytes());
        }
        Op::Fence => d.sfence(),
        Op::Commit { txn } => commit(d, shadow, txn),
        Op::Crash => {
            d.crash(CrashPolicy::LoseVolatile);
            shadow.crash();
        }
    }
}

fn read_all(d: &Nvm) -> Vec<u8> {
    let mut buf = vec![0u8; CAP];
    d.read(0, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `persist()`-covered bytes survive `LoseVolatile`, and nothing else
    /// does: the post-crash image equals the shadow model's durable state.
    #[test]
    fn persisted_bytes_survive_lose_volatile(seq in collection::vec(ops(), 1..60)) {
        let d = device();
        let mut shadow = Shadow::new();
        for op in &seq {
            apply(&d, &mut shadow, op);
        }
        let pre = read_all(&d);
        prop_assert_eq!(&pre, &shadow.volatile, "pre-crash read mismatch");
        d.crash(CrashPolicy::LoseVolatile);
        shadow.crash();
        let post = read_all(&d);
        for (i, (&got, &want)) in post.iter().zip(&shadow.durable).enumerate() {
            prop_assert!(
                got == want,
                "byte {} holds {:#x} after crash, shadow model says {:#x}",
                i,
                got,
                want
            );
        }
    }

    /// The analyzer never cries wolf: any random sequence whose commits
    /// flush-then-fence everything first is reported clean, whatever the
    /// interleaving of stores, persists, fences, and crashes around it.
    #[test]
    fn analyzer_has_no_false_positives(seq in collection::vec(ops(), 1..60), txn in 1u64..1000) {
        let d = device();
        let mut shadow = Shadow::new();
        for op in &seq {
            apply(&d, &mut shadow, op);
        }
        commit(&d, &mut shadow, txn);
        let report = check(&d.take_trace(), CheckConfig::default());
        prop_assert!(
            report.is_clean(),
            "false positive on a fully-flushed commit sequence:\n{}",
            report
        );
        prop_assert!(report.commits >= 1);
    }
}
