//! Mutation tests: a faithful copy of the Tinca commit protocol (§4.4)
//! with test-only fault knobs. Deleting a single `clflush`/`sfence`, or
//! downgrading an atomic store to a plain one, must be flagged by the
//! analyzer with the exact rule name — and the unmutated protocol must
//! come back clean.

use nvmsim::{Nvm, NvmConfig, NvmDevice, NvmTech, SimClock};
use persistcheck::{check, CheckConfig, Rule};

/// Mini NVM layout mirroring the real one: metadata low, data high.
const TAIL_OFF: usize = 0;
const HEAD_OFF: usize = 64;
const RING_OFF: usize = 128;
const ENTRY_OFF: usize = 256;
const DATA_OFF: usize = 1024;
const BLOCK: usize = 512;

/// Test-only holes punched into the protocol.
#[derive(Clone, Copy, Default)]
struct Faults {
    /// Skip the COW data block's clflush+sfence (step 1).
    skip_data_flush: bool,
    /// Skip the role-switch sfence, letting the entry write-back ride the
    /// commit record's fence (step 4).
    skip_role_switch_fence: bool,
    /// Write the 16-byte entry with a plain store instead of
    /// `atomic_write_u128` (step 2).
    plain_entry_store: bool,
}

fn device() -> Nvm {
    NvmDevice::new(
        NvmConfig::new(8192, NvmTech::Pcm).with_tracing(),
        SimClock::new(),
    )
}

fn config() -> CheckConfig {
    let meta = 0..DATA_OFF;
    CheckConfig::with_metadata(vec![meta])
}

/// One commit of one block, following §4.4 step for step.
fn commit_once(d: &Nvm, txn_no: u64, faults: Faults) {
    // (1) COW block write: payload, flush, fence.
    let payload = vec![txn_no as u8; BLOCK];
    d.write(DATA_OFF, &payload);
    if !faults.skip_data_flush {
        d.persist(DATA_OFF, BLOCK);
    }
    // (2) Cache entry: one 16-byte atomic store, persisted.
    let entry = (u128::from(txn_no) << 64) | 0x1; // log role
    if faults.plain_entry_store {
        d.write(ENTRY_OFF, &entry.to_le_bytes());
    } else {
        d.atomic_write_u128(ENTRY_OFF, entry);
    }
    d.persist(ENTRY_OFF, 16);
    // (3) Ring slot + Head move, 8-byte atomics.
    d.atomic_write_u64(RING_OFF, txn_no);
    d.persist(RING_OFF, 8);
    d.atomic_write_u64(HEAD_OFF, txn_no);
    d.persist(HEAD_OFF, 8);
    // (4) Role switch: atomic entry update + flush, one fence for the batch.
    let switched = (u128::from(txn_no) << 64) | 0x2; // buffer role
    d.atomic_write_u128(ENTRY_OFF, switched);
    d.clflush(ENTRY_OFF, 16);
    if !faults.skip_role_switch_fence {
        d.sfence();
    }
    // (5) Commit point: Tail := Head, persisted, then the annotation.
    d.atomic_write_u64(TAIL_OFF, txn_no);
    d.persist(TAIL_OFF, 8);
    d.note_commit(TAIL_OFF, 8);
}

#[test]
fn unmutated_protocol_is_clean() {
    let d = device();
    for txn in 1..=5 {
        commit_once(&d, txn, Faults::default());
    }
    let r = check(&d.take_trace(), config());
    assert!(
        r.is_clean(),
        "clean protocol must report zero violations:\n{r}"
    );
    assert_eq!(r.commits, 5);
}

#[test]
fn deleting_the_data_flush_is_missing_flush() {
    let d = device();
    commit_once(
        &d,
        1,
        Faults {
            skip_data_flush: true,
            ..Faults::default()
        },
    );
    let r = check(&d.take_trace(), config());
    assert_eq!(
        r.fired_rules(),
        ["missing-flush"],
        "exactly the missing-flush rule must fire:\n{r}"
    );
    // Every dirty data line is cited, each naming its store and the commit.
    assert_eq!(
        r.count(Rule::MissingFlush),
        BLOCK / nvmsim::CACHE_LINE,
        "{r}"
    );
    for v in &r.violations {
        assert!(v.addr >= DATA_OFF && v.addr < DATA_OFF + BLOCK);
        assert_eq!(v.events.len(), 2, "store + commit ordinals");
    }
}

#[test]
fn deleting_the_role_switch_fence_is_flush_without_fence() {
    let d = device();
    commit_once(
        &d,
        1,
        Faults {
            skip_role_switch_fence: true,
            ..Faults::default()
        },
    );
    let r = check(&d.take_trace(), config());
    assert_eq!(
        r.fired_rules(),
        ["flush-without-fence"],
        "exactly the flush-without-fence rule must fire:\n{r}"
    );
    assert_eq!(r.count(Rule::FlushWithoutFence), 1, "{r}");
    let v = &r.violations[0];
    assert_eq!(v.addr, ENTRY_OFF, "the entry line rode the commit's fence");
}

#[test]
fn plain_entry_store_is_torn_update() {
    let d = device();
    // First commit makes the entry line durable; the mutated second commit
    // then overwrites it with a plain (tearable) 2-word store.
    commit_once(&d, 1, Faults::default());
    commit_once(
        &d,
        2,
        Faults {
            plain_entry_store: true,
            ..Faults::default()
        },
    );
    let r = check(&d.take_trace(), config());
    assert_eq!(
        r.fired_rules(),
        ["torn-update"],
        "exactly the torn-update rule must fire:\n{r}"
    );
    assert_eq!(r.count(Rule::TornUpdate), 1, "{r}");
    assert_eq!(r.violations[0].addr, ENTRY_OFF);
}

#[test]
fn each_mutation_is_flagged_under_its_own_name() {
    // The report's Display output names the exact rule, so a CI failure
    // log identifies the deleted instruction directly.
    let cases: [(Faults, &str); 3] = [
        (
            Faults {
                skip_data_flush: true,
                ..Faults::default()
            },
            "missing-flush",
        ),
        (
            Faults {
                skip_role_switch_fence: true,
                ..Faults::default()
            },
            "flush-without-fence",
        ),
        (
            Faults {
                plain_entry_store: true,
                ..Faults::default()
            },
            "torn-update",
        ),
    ];
    for (faults, rule_name) in cases {
        let d = device();
        commit_once(&d, 1, Faults::default()); // warm, clean commit
        commit_once(&d, 2, faults);
        let r = check(&d.take_trace(), config());
        assert_eq!(r.fired_rules(), [rule_name], "{r}");
        assert!(r.to_string().contains(rule_name), "{r}");
    }
}
