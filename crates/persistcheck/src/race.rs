//! The persistrace engine: vector-clock happens-before tracking with an
//! Eraser-style lockset fallback, over thread-tagged nvmsim traces.
//!
//! ## Model
//!
//! Every traced event ticks its thread's vector clock. The four sync
//! annotations move clocks between threads through per-object clocks:
//!
//! * `LockRelease { obj }` / `AtomicStoreRelease { obj }` — publish: the
//!   object clock joins the releasing thread's clock.
//! * `LockAcquire { obj }` / `AtomicLoadAcquire { obj }` — adopt: the
//!   acquiring thread's clock joins the object clock.
//!
//! Event `a` *happens-before* event `b` iff `a`'s clock snapshot ≤ `b`'s
//! thread clock at `b`. Lock acquire/release additionally maintain each
//! thread's *lockset*; a candidate race whose two sides held a common
//! lock is suppressed (Eraser fallback) — mutual exclusion without a
//! visible release→acquire pair usually means an elided annotation, and a
//! suppressed report beats a false positive in a CI gate.
//!
//! ## Rules
//!
//! * **persist-race** — two threads' *unfenced* stores touch the same
//!   cache line with no happens-before edge between them. Until a fence
//!   makes the line durable, write-back order is undefined, so recovery
//!   can observe either thread's bytes (or a word-level mix on one line).
//! * **cross-thread-flush-dependency** — thread B `clflush`es a line whose
//!   latest store came from thread A with no edge A→B: A's durability
//!   silently depends on a flush A never ordered with, so moving or
//!   removing B's flush (or B crashing first) loses A's data.
//! * **unordered-commit** — a commit annotation by thread T covers a line
//!   whose durability fence was issued by another thread with no edge
//!   fence→commit: T declares data durable without having synchronized
//!   with the thread that made it so.
//!
//! Each violation cites both event ordinals and names the missing edge
//! (`tA#i -> tB#j`). Per (rule, line, thread-pair) only the first instance
//! is reported, so one buggy code path does not flood the report.

use std::collections::{HashMap, HashSet};

use crate::{Rule, Violation};
use nvmsim::CACHE_LINE;

/// A vector clock over dense thread indices.
#[derive(Clone, Debug, Default, PartialEq)]
struct VClock(Vec<u64>);

impl VClock {
    fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Component-wise ≤ (missing components are 0).
    fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

/// Per-thread engine state.
#[derive(Debug, Default)]
struct ThreadState {
    vc: VClock,
    /// Sync-object ids of currently held locks (small; linear scans).
    locks: Vec<u64>,
}

/// One thread's latest unfenced store to a line.
#[derive(Clone, Debug)]
struct Access {
    thread: u32,
    seq: u64,
    vc: VClock,
    locks: Vec<u64>,
}

/// The fence that last made a line durable.
#[derive(Clone, Debug)]
struct FenceInfo {
    thread: u32,
    seq: u64,
    vc: VClock,
    locks: Vec<u64>,
}

fn locks_disjoint(a: &[u64], b: &[u64]) -> bool {
    !a.iter().any(|l| b.contains(l))
}

/// Incremental happens-before + lockset state, driven by
/// [`crate::Checker`] as it replays the trace.
#[derive(Debug, Default)]
pub(crate) struct RaceEngine {
    /// Global thread id → dense index.
    tix: HashMap<u32, usize>,
    threads: Vec<ThreadState>,
    /// Seen more than one thread id (cheap pre-filter: a single-threaded
    /// trace is totally ordered and can never race).
    multi: bool,
    /// Per sync object: clock published by the last release-type event.
    sync: HashMap<u64, VClock>,
    /// Per line: unfenced stores, at most one per thread.
    writers: HashMap<usize, Vec<Access>>,
    /// Per line: the fence that last made it durable.
    durable: HashMap<usize, FenceInfo>,
    /// (rule, line, thread pair) already reported.
    fired: HashSet<(Rule, usize, u32, u32)>,
}

impl RaceEngine {
    fn idx(&mut self, t: u32) -> usize {
        if let Some(&i) = self.tix.get(&t) {
            return i;
        }
        let i = self.threads.len();
        self.tix.insert(t, i);
        self.threads.push(ThreadState::default());
        if i > 0 {
            self.multi = true;
        }
        i
    }

    /// Ticks `t`'s clock; call once per trace event, before the handler.
    pub(crate) fn begin(&mut self, t: u32) {
        let i = self.idx(t);
        self.threads[i].vc.tick(i);
    }

    pub(crate) fn acquire(&mut self, t: u32, obj: u64) {
        let i = self.idx(t);
        if let Some(o) = self.sync.get(&obj) {
            let o = o.clone();
            self.threads[i].vc.join(&o);
        }
        if !self.threads[i].locks.contains(&obj) {
            self.threads[i].locks.push(obj);
        }
    }

    pub(crate) fn release(&mut self, t: u32, obj: u64) {
        let i = self.idx(t);
        self.sync.entry(obj).or_default().join(&self.threads[i].vc);
        self.threads[i].locks.retain(|&l| l != obj);
    }

    pub(crate) fn load_acquire(&mut self, t: u32, obj: u64) {
        let i = self.idx(t);
        if let Some(o) = self.sync.get(&obj) {
            let o = o.clone();
            self.threads[i].vc.join(&o);
        }
    }

    pub(crate) fn store_release(&mut self, t: u32, obj: u64) {
        let i = self.idx(t);
        self.sync.entry(obj).or_default().join(&self.threads[i].vc);
    }

    fn fire_once(&mut self, rule: Rule, line: usize, a: u32, b: u32) -> bool {
        self.fired.insert((rule, line, a.min(b), a.max(b)))
    }

    /// A store by `t` covering `lines`: race-checks against other threads'
    /// unfenced stores, then records/refreshes `t`'s access per line.
    pub(crate) fn store(
        &mut self,
        t: u32,
        seq: u64,
        lines: impl Iterator<Item = usize>,
        out: &mut Vec<Violation>,
    ) {
        let i = self.idx(t);
        let vc = self.threads[i].vc.clone();
        let locks = self.threads[i].locks.clone();
        for line in lines {
            if self.multi {
                let candidates: Vec<(u32, u64)> = self
                    .writers
                    .get(&line)
                    .map(|ws| {
                        ws.iter()
                            .filter(|a| {
                                a.thread != t && !a.vc.leq(&vc) && locks_disjoint(&a.locks, &locks)
                            })
                            .map(|a| (a.thread, a.seq))
                            .collect()
                    })
                    .unwrap_or_default();
                for (other, other_seq) in candidates {
                    if self.fire_once(Rule::PersistRace, line, other, t) {
                        let base = line * CACHE_LINE;
                        out.push(Violation {
                            rule: Rule::PersistRace,
                            addr: base,
                            events: vec![other_seq, seq],
                            detail: format!(
                                "threads t{other} and t{t} both stored line {base:#x} while it \
                                 was unfenced; missing happens-before edge \
                                 t{other}#{other_seq} -> t{t}#{seq} (disjoint locksets), so \
                                 recovery can observe either thread's write-back"
                            ),
                        });
                    }
                }
            }
            let ws = self.writers.entry(line).or_default();
            match ws.iter_mut().find(|a| a.thread == t) {
                Some(a) => {
                    a.seq = seq;
                    a.vc = vc.clone();
                    a.locks = locks.clone();
                }
                None => ws.push(Access {
                    thread: t,
                    seq,
                    vc: vc.clone(),
                    locks: locks.clone(),
                }),
            }
        }
    }

    /// A staged `clflush` by `t` of `line`: flags unfenced stores by other
    /// threads with no edge into the flush.
    pub(crate) fn flush(&mut self, t: u32, seq: u64, line: usize, out: &mut Vec<Violation>) {
        if !self.multi {
            return;
        }
        let i = self.idx(t);
        let vc = self.threads[i].vc.clone();
        let locks = self.threads[i].locks.clone();
        let candidates: Vec<(u32, u64)> = self
            .writers
            .get(&line)
            .map(|ws| {
                ws.iter()
                    .filter(|a| a.thread != t && !a.vc.leq(&vc) && locks_disjoint(&a.locks, &locks))
                    .map(|a| (a.thread, a.seq))
                    .collect()
            })
            .unwrap_or_default();
        for (other, other_seq) in candidates {
            if self.fire_once(Rule::CrossThreadFlushDependency, line, other, t) {
                let base = line * CACHE_LINE;
                out.push(Violation {
                    rule: Rule::CrossThreadFlushDependency,
                    addr: base,
                    events: vec![other_seq, seq],
                    detail: format!(
                        "t{t}'s clflush of line {base:#x} at #{seq} is what persists \
                         t{other}'s store at #{other_seq}, but there is no happens-before \
                         edge t{other}#{other_seq} -> t{t}#{seq} (disjoint locksets): \
                         t{other}'s durability depends on a flush it never ordered with"
                    ),
                });
            }
        }
    }

    /// An `sfence` by `t` made `line` durable. Records the fence info for
    /// the unordered-commit rule and retires the line's unfenced stores
    /// (unless the line was re-dirtied after its flush).
    pub(crate) fn fence_line(&mut self, t: u32, seq: u64, line: usize, still_dirty: bool) {
        let i = self.idx(t);
        self.durable.insert(
            line,
            FenceInfo {
                thread: t,
                seq,
                vc: self.threads[i].vc.clone(),
                locks: self.threads[i].locks.clone(),
            },
        );
        if !still_dirty {
            self.writers.remove(&line);
        }
    }

    /// A commit by `t` covers `line` (fenced in an earlier epoch): flags a
    /// durability fence issued by another thread with no edge into the
    /// commit.
    pub(crate) fn commit_check(
        &mut self,
        t: u32,
        commit_seq: u64,
        line: usize,
        out: &mut Vec<Violation>,
    ) {
        if !self.multi {
            return;
        }
        let i = self.idx(t);
        let Some(f) = self.durable.get(&line) else {
            return;
        };
        if f.thread == t
            || f.vc.leq(&self.threads[i].vc)
            || !locks_disjoint(&f.locks, &self.threads[i].locks)
        {
            return;
        }
        let (other, other_seq) = (f.thread, f.seq);
        if self.fire_once(Rule::UnorderedCommit, line, other, t) {
            let base = line * CACHE_LINE;
            out.push(Violation {
                rule: Rule::UnorderedCommit,
                addr: base,
                events: vec![other_seq, commit_seq],
                detail: format!(
                    "commit at #{commit_seq} by t{t} covers line {base:#x}, whose durability \
                     fence was t{other}'s sfence at #{other_seq}; missing happens-before edge \
                     t{other}#{other_seq} -> t{t}#{commit_seq} (disjoint locksets), so the \
                     commit can persist before the data it declares durable"
                ),
            });
        }
    }

    /// A crash ends the execution: all pending cross-thread state is moot.
    /// Thread clocks survive (they only ever grow; keeping them cannot
    /// create a spurious edge, only suppress reports across the crash,
    /// which is correct — pre-crash events *did* happen before recovery).
    pub(crate) fn crash(&mut self) {
        self.writers.clear();
        self.durable.clear();
        self.sync.clear();
        for th in &mut self.threads {
            th.locks.clear();
        }
    }
}
