//! # persistcheck — persist-ordering analysis over nvmsim traces
//!
//! A `pmemcheck`-style rule engine: replay an [`nvmsim`] event trace
//! (recorded with [`NvmConfig::with_tracing`](nvmsim::NvmConfig)) and
//! report stores that a crash could expose as lost, reordered, or torn —
//! plus persistence-instruction waste.
//!
//! ## Rules
//!
//! Correctness (any hit fails the check):
//!
//! * **missing-flush** — a line stored inside the commit window (since the
//!   previous commit/crash) is still dirty when the commit record
//!   persists: a crash right after the commit point can lose data the
//!   commit record claims durable.
//! * **flush-without-fence** — a commit-window line was flushed but only
//!   became durable on the *same* `sfence` as the commit record itself.
//!   Within one fence epoch write-backs are unordered, so a crash inside
//!   that epoch can persist the commit record without the data. (With
//!   [`CheckConfig::strict`], a fence epoch still open at a crash or at
//!   the end of the trace is also flagged; shadow-mode checking leaves
//!   this off because crash injection legitimately trips mid-epoch.)
//! * **torn-update** — a plain multi-word store to a single metadata cache
//!   line that was durable before: plain stores only have 8-byte failure
//!   atomicity, so recovery can observe the line half-updated. Metadata
//!   updates must go through `atomic_write_u64`/`atomic_write_u128`.
//!
//! Concurrency rules (the *persistrace* engine, in the `race` module):
//! driven by the thread/txn provenance and sync annotations on each
//! [`TracedOp`], a vector-clock happens-before engine with an
//! Eraser-style lockset fallback. All three are correctness rules; none
//! can fire on a single-threaded trace (it is totally ordered).
//!
//! * **persist-race** — two threads' unfenced stores to the same cache
//!   line with no happens-before edge.
//! * **unordered-commit** — a commit annotation not HB-after the fence
//!   that made the data it covers durable.
//! * **cross-thread-flush-dependency** — thread A's durability depends on
//!   a flush only thread B issues, with no sync edge A→B.
//!
//! Performance lints (reported separately, never fail the check):
//!
//! * **redundant-flush** — `clflush` of a clean line: costs latency,
//!   persists nothing.
//! * **fence-without-flush** — `sfence` with an empty flush epoch: orders
//!   nothing.
//!
//! The analyzer is protocol-agnostic: it keys on
//! [`TraceEvent::Commit`](nvmsim::TraceEvent) annotations emitted by the
//! commit path ([`NvmDevice::note_commit`](nvmsim::NvmDevice)) and on the
//! caller-declared metadata address ranges in [`CheckConfig`].
//!
//! ## Multi-device (merged) traces
//!
//! Every [`TracedOp`] names its originating device; a single device
//! records `0`, and [`nvmsim::merge_shard_traces`] stamps each op with
//! its shard index. Fence epochs, fence counters, and commit windows are
//! kept **per device**: an `sfence` on shard A orders only shard A's
//! write-backs, and a commit record judges only the stores of its own
//! device. The happens-before engine, by contrast, is pool-global — it
//! follows threads and sync objects across devices, which is exactly
//! what lets the race rules see a thread hand work between shards.

mod race;

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use nvmsim::{TraceEvent, TracedOp, CACHE_LINE, WORD_SIZE};
use race::RaceEngine;
use telemetry::Json;

/// How many example event ordinals each perf-lint counter retains.
const LINT_EXAMPLES: usize = 8;

/// Analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct CheckConfig {
    /// Byte ranges holding crash-critical metadata (headers, ring slots,
    /// entry tables). The torn-update rule only fires inside these ranges;
    /// bulk data regions are exempt because block payloads are guarded by
    /// the commit protocol, not by store atomicity.
    pub metadata_ranges: Vec<Range<usize>>,
    /// Also flag fence epochs left open at a crash or at the end of the
    /// trace as flush-without-fence. Off in shadow mode: injected crashes
    /// land mid-epoch by design.
    pub strict: bool,
}

impl CheckConfig {
    /// Config with the given metadata ranges, non-strict.
    pub fn with_metadata(metadata_ranges: Vec<Range<usize>>) -> Self {
        CheckConfig {
            metadata_ranges,
            strict: false,
        }
    }

    fn overlaps_metadata(&self, start: usize, end: usize) -> bool {
        self.metadata_ranges
            .iter()
            .any(|r| start < r.end && r.start < end)
    }
}

/// The analyzer rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    MissingFlush,
    FlushWithoutFence,
    TornUpdate,
    PersistRace,
    UnorderedCommit,
    CrossThreadFlushDependency,
    RedundantFlush,
    FenceWithoutFlush,
}

impl Rule {
    /// Every rule, correctness first, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::MissingFlush,
        Rule::FlushWithoutFence,
        Rule::TornUpdate,
        Rule::PersistRace,
        Rule::UnorderedCommit,
        Rule::CrossThreadFlushDependency,
        Rule::RedundantFlush,
        Rule::FenceWithoutFlush,
    ];

    /// Stable kebab-case rule name, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MissingFlush => "missing-flush",
            Rule::FlushWithoutFence => "flush-without-fence",
            Rule::TornUpdate => "torn-update",
            Rule::PersistRace => "persist-race",
            Rule::UnorderedCommit => "unordered-commit",
            Rule::CrossThreadFlushDependency => "cross-thread-flush-dependency",
            Rule::RedundantFlush => "redundant-flush",
            Rule::FenceWithoutFlush => "fence-without-flush",
        }
    }

    /// Whether a hit means possible data loss (vs. wasted work).
    pub fn is_correctness(self) -> bool {
        !matches!(self, Rule::RedundantFlush | Rule::FenceWithoutFlush)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One correctness violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    /// Base address of the affected cache line.
    pub addr: usize,
    /// Trace ordinals of the responsible events (e.g. the store and the
    /// commit that exposed it).
    pub events: Vec<u64>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let evs: Vec<String> = self.events.iter().map(|e| format!("#{e}")).collect();
        write!(
            f,
            "{} @ {:#x} [{}]: {}",
            self.rule.name(),
            self.addr,
            evs.join(", "),
            self.detail
        )
    }
}

/// Analysis result: correctness violations plus perf-lint counters.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Correctness violations (missing-flush, flush-without-fence,
    /// torn-update), in trace order.
    pub violations: Vec<Violation>,
    /// Number of clean-line `clflush`es (redundant-flush lint).
    pub redundant_flushes: u64,
    /// First few trace ordinals of redundant flushes.
    pub redundant_flush_events: Vec<u64>,
    /// Number of no-op `sfence`s (fence-without-flush lint).
    pub empty_fences: u64,
    /// First few trace ordinals of no-op fences.
    pub empty_fence_events: Vec<u64>,
    /// Commit annotations seen.
    pub commits: u64,
    /// Crashes seen.
    pub crashes: u64,
    /// Events analyzed.
    pub events: u64,
}

impl Report {
    /// True when no correctness violation was found (perf lints may
    /// still be non-zero).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of correctness violations of `rule`.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Names of the rules that fired, deduplicated, in trace order.
    pub fn fired_rules(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for v in &self.violations {
            if !out.contains(&v.rule.name()) {
                out.push(v.rule.name());
            }
        }
        out
    }

    /// Machine-readable report. The schema is stable — downstream tooling
    /// parses it — and versioned by the `schema` field:
    ///
    /// ```json
    /// {"schema":1,"events":N,"commits":N,"crashes":N,"clean":bool,
    ///  "counts":{"<rule-name>":N, ...},                 // all 8 rules, always present
    ///  "violations":[{"rule":"...","addr":N,"events":[N,...],"detail":"..."}],
    ///  "redundant_flush_events":[N,...],"empty_fence_events":[N,...]}
    /// ```
    pub fn to_json(&self) -> Json {
        let ordinals = |evs: &[u64]| Json::Arr(evs.iter().map(|&e| Json::U64(e)).collect());
        let counts = Rule::ALL
            .iter()
            .map(|&r| {
                let n = match r {
                    Rule::RedundantFlush => self.redundant_flushes,
                    Rule::FenceWithoutFlush => self.empty_fences,
                    _ => self.count(r) as u64,
                };
                (r.name().to_string(), Json::U64(n))
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::U64(1)),
            ("events", Json::U64(self.events)),
            ("commits", Json::U64(self.commits)),
            ("crashes", Json::U64(self.crashes)),
            ("clean", Json::Bool(self.is_clean())),
            ("counts", Json::Obj(counts)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("rule", v.rule.name().into()),
                                ("addr", Json::U64(v.addr as u64)),
                                ("events", ordinals(&v.events)),
                                ("detail", v.detail.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "redundant_flush_events",
                ordinals(&self.redundant_flush_events),
            ),
            ("empty_fence_events", ordinals(&self.empty_fence_events)),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "persistcheck: {} events, {} commits, {} crashes",
            self.events, self.commits, self.crashes
        )?;
        writeln!(f, "  correctness violations: {}", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "    {v}")?;
        }
        let fmt_examples = |evs: &[u64]| -> String {
            if evs.is_empty() {
                String::new()
            } else {
                let s: Vec<String> = evs.iter().map(|e| format!("#{e}")).collect();
                format!(" (first at {})", s.join(", "))
            }
        };
        writeln!(
            f,
            "  redundant-flush      : {} clean-line clflush{}{}",
            self.redundant_flushes,
            if self.redundant_flushes == 1 {
                ""
            } else {
                "es"
            },
            fmt_examples(&self.redundant_flush_events)
        )?;
        writeln!(
            f,
            "  fence-without-flush  : {} no-op sfence{}{}",
            self.empty_fences,
            if self.empty_fences == 1 { "" } else { "s" },
            fmt_examples(&self.empty_fence_events)
        )?;
        write!(
            f,
            "verdict: {}",
            if self.is_clean() { "CLEAN" } else { "FAIL" }
        )
    }
}

/// Per-cache-line analyzer state.
#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    /// Stored since last flush.
    dirty: bool,
    /// Flushed into the currently open fence epoch.
    staged: bool,
    /// Ordinal of the most recent flush of this line.
    last_flush_seq: u64,
    /// Fence epoch (1-based per-device sfence count) at which the line
    /// last became durable; 0 = never fenced.
    last_fence: u64,
    /// Ever made durable by a fence (used as the torn-update
    /// precondition: formatting fresh, never-persisted space with plain
    /// stores is fine).
    durable_once: bool,
    /// Device the line belongs to. Devices of a merged shard trace never
    /// share lines (shard addresses are rebased to disjoint ranges), so
    /// stamping on every touch is stable.
    device: u32,
}

/// Per-device fence-pipeline state. A single-device trace (`device == 0`
/// on every op) uses exactly one of these; a merged shard trace
/// ([`nvmsim::merge_shard_traces`]) gets one per shard, because an
/// `sfence` orders only the write-backs of its own device and a commit
/// record only judges the commit window of the device it was written to.
#[derive(Debug, Default)]
struct DevState {
    /// Lines flushed into this device's currently open fence epoch.
    epoch_lines: Vec<usize>,
    /// Lines stored on this device since its last commit/crash →
    /// ordinal of the latest store.
    window: HashMap<usize, u64>,
    /// sfences seen on this device so far (1-based epoch ids).
    fences: u64,
}

/// Incremental trace analyzer. Feed events with [`Checker::push`] (in
/// trace order, possibly across multiple drains of the device trace), then
/// read [`Checker::report`] or call [`Checker::finish`].
#[derive(Debug)]
pub struct Checker {
    cfg: CheckConfig,
    lines: HashMap<usize, LineState>,
    /// Fence/commit pipeline state, keyed by originating device (ordered
    /// so strict end-of-trace sweeps report deterministically).
    devs: std::collections::BTreeMap<u32, DevState>,
    last_seq: Option<u64>,
    /// Happens-before + lockset state for the concurrency rules.
    race: RaceEngine,
    report: Report,
}

impl Checker {
    pub fn new(cfg: CheckConfig) -> Self {
        Checker {
            cfg,
            lines: HashMap::new(),
            devs: std::collections::BTreeMap::new(),
            last_seq: None,
            race: RaceEngine::default(),
            report: Report::default(),
        }
    }

    /// Feeds one event. Events must arrive in `seq` order.
    pub fn push(&mut self, op: &TracedOp) {
        if let Some(prev) = self.last_seq {
            debug_assert!(
                op.seq > prev,
                "trace events out of order: {} after {prev}",
                op.seq
            );
        }
        self.last_seq = Some(op.seq);
        self.report.events += 1;
        let t = op.thread;
        let d = op.device;
        self.race.begin(t);
        match op.event {
            TraceEvent::Store { addr, len } => self.on_store(t, d, op.seq, addr, len, false),
            TraceEvent::AtomicStore { addr, len } => self.on_store(t, d, op.seq, addr, len, true),
            TraceEvent::Clflush { line, staged } => self.on_clflush(t, d, op.seq, line, staged),
            TraceEvent::Sfence { staged_lines } => self.on_sfence(t, d, op.seq, staged_lines),
            TraceEvent::Commit { addr, len } => self.on_commit(t, d, op.seq, addr, len),
            TraceEvent::Crash => self.on_crash(d, op.seq),
            TraceEvent::ReadAfterRecovery { .. } => {}
            TraceEvent::LockAcquire { obj } => self.race.acquire(t, obj),
            TraceEvent::LockRelease { obj } => self.race.release(t, obj),
            TraceEvent::AtomicLoadAcquire { obj } => self.race.load_acquire(t, obj),
            TraceEvent::AtomicStoreRelease { obj } => self.race.store_release(t, obj),
        }
    }

    /// Feeds a batch of events.
    pub fn push_all(&mut self, ops: &[TracedOp]) {
        for op in ops {
            self.push(op);
        }
    }

    /// Snapshot of the findings so far (strict end-of-trace checks not
    /// applied — use [`Checker::finish`] for those).
    pub fn report(&self) -> Report {
        self.report.clone()
    }

    /// Consumes the checker, applying strict end-of-trace checks when
    /// configured, and returns the final report.
    pub fn finish(mut self) -> Report {
        if self.cfg.strict {
            let seq = self.last_seq.map_or(0, |s| s + 1);
            let devices: Vec<u32> = self.devs.keys().copied().collect();
            for d in devices {
                self.flag_open_epoch(d, seq, "end of trace");
            }
        }
        self.report
    }

    fn on_store(&mut self, t: u32, d: u32, seq: u64, addr: usize, len: usize, atomic: bool) {
        if len == 0 {
            return;
        }
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        self.race
            .store(t, seq, first..=last, &mut self.report.violations);
        for line in first..=last {
            let base = line * CACHE_LINE;
            let start = addr.max(base);
            let end = (addr + len).min(base + CACHE_LINE);
            let ls = self.lines.entry(line).or_default();
            let words = (end - 1) / WORD_SIZE - start / WORD_SIZE + 1;
            if !atomic && words >= 2 && ls.durable_once && self.cfg.overlaps_metadata(start, end) {
                self.report.violations.push(Violation {
                    rule: Rule::TornUpdate,
                    addr: base,
                    events: vec![seq],
                    detail: format!(
                        "plain store of {} bytes ({words} words) to durable metadata line \
                         {base:#x}; only 8-byte atomicity — use atomic_write_u64/u128",
                        end - start
                    ),
                });
            }
            let ls = self.lines.entry(line).or_default();
            ls.dirty = true;
            ls.device = d;
            self.devs.entry(d).or_default().window.insert(line, seq);
        }
    }

    fn on_clflush(&mut self, t: u32, d: u32, seq: u64, line: usize, staged: bool) {
        if staged {
            self.race.flush(t, seq, line, &mut self.report.violations);
            let ls = self.lines.entry(line).or_default();
            ls.dirty = false;
            ls.device = d;
            if !ls.staged {
                ls.staged = true;
                self.devs.entry(d).or_default().epoch_lines.push(line);
            }
            ls.last_flush_seq = seq;
        } else {
            self.report.redundant_flushes += 1;
            if self.report.redundant_flush_events.len() < LINT_EXAMPLES {
                self.report.redundant_flush_events.push(seq);
            }
        }
    }

    fn on_sfence(&mut self, t: u32, d: u32, seq: u64, staged_lines: usize) {
        let dev = self.devs.entry(d).or_default();
        dev.fences += 1;
        if staged_lines == 0 {
            self.report.empty_fences += 1;
            if self.report.empty_fence_events.len() < LINT_EXAMPLES {
                self.report.empty_fence_events.push(seq);
            }
        }
        let fences = dev.fences;
        for line in dev.epoch_lines.drain(..) {
            if let Some(ls) = self.lines.get_mut(&line) {
                ls.staged = false;
                ls.last_fence = fences;
                ls.durable_once = true;
                self.race.fence_line(t, seq, line, ls.dirty);
            }
        }
    }

    fn on_commit(&mut self, t: u32, d: u32, seq: u64, addr: usize, len: usize) {
        self.report.commits += 1;
        let rec_first = addr / CACHE_LINE;
        let rec_last = if len == 0 {
            rec_first
        } else {
            (addr + len - 1) / CACHE_LINE
        };
        let dev = self.devs.entry(d).or_default();
        let dev_fences = dev.fences;
        // Deterministic report order: judge window lines oldest-store first.
        let mut entries: Vec<(usize, u64)> = dev.window.drain().collect();
        entries.sort_by_key(|&(l, s)| (s, l));
        for (line, store_seq) in entries {
            if (rec_first..=rec_last).contains(&line) {
                continue; // the commit record itself
            }
            let Some(ls) = self.lines.get(&line) else {
                continue;
            };
            let base = line * CACHE_LINE;
            if ls.dirty {
                self.report.violations.push(Violation {
                    rule: Rule::MissingFlush,
                    addr: base,
                    events: vec![store_seq, seq],
                    detail: format!(
                        "line {base:#x} stored at #{store_seq} never flushed before the \
                         commit record persisted at #{seq}; a crash now loses committed data"
                    ),
                });
            } else if ls.last_fence == dev_fences {
                self.report.violations.push(Violation {
                    rule: Rule::FlushWithoutFence,
                    addr: base,
                    events: vec![ls.last_flush_seq, seq],
                    detail: format!(
                        "line {base:#x} flushed at #{} but only fenced together with the \
                         commit record at #{seq}; within one fence epoch write-backs are \
                         unordered, so the commit record can persist first",
                        ls.last_flush_seq
                    ),
                });
            } else if ls.last_fence != 0 {
                // Durable in an earlier epoch: the data is safe, but the
                // commit must still be ordered after the fence that made
                // it so — another thread's fence needs a sync edge.
                self.race
                    .commit_check(t, seq, line, &mut self.report.violations);
            }
        }
    }

    fn on_crash(&mut self, d: u32, seq: u64) {
        self.report.crashes += 1;
        self.race.crash();
        if self.cfg.strict {
            self.flag_open_epoch(d, seq, "crash");
        }
        // The crashed device drops its volatile state; mirror it. Other
        // devices of a merged trace keep theirs — power is per device.
        for ls in self.lines.values_mut() {
            if ls.device == d {
                ls.dirty = false;
                ls.staged = false;
            }
        }
        if let Some(dev) = self.devs.get_mut(&d) {
            dev.epoch_lines.clear();
            dev.window.clear();
        }
    }

    fn flag_open_epoch(&mut self, d: u32, seq: u64, at: &str) {
        let open = match self.devs.get_mut(&d) {
            Some(dev) => std::mem::take(&mut dev.epoch_lines),
            None => return,
        };
        for line in open {
            let Some(ls) = self.lines.get(&line) else {
                continue;
            };
            if !ls.staged {
                continue;
            }
            let base = line * CACHE_LINE;
            self.report.violations.push(Violation {
                rule: Rule::FlushWithoutFence,
                addr: base,
                events: vec![ls.last_flush_seq, seq],
                detail: format!(
                    "line {base:#x} flushed at #{} but its fence epoch was still open at \
                     {at} (#{seq}); the write-back was not yet ordered durable",
                    ls.last_flush_seq
                ),
            });
        }
    }
}

/// One-shot analysis of a complete trace.
pub fn check(trace: &[TracedOp], cfg: CheckConfig) -> Report {
    let mut c = Checker::new(cfg);
    c.push_all(trace);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    /// A traced 4 KiB device; metadata = first 256 bytes.
    fn traced() -> (nvmsim::Nvm, CheckConfig) {
        let dev = NvmDevice::new(
            NvmConfig::new(4096, NvmTech::Pcm).with_tracing(),
            SimClock::new(),
        );
        let meta = 0..256;
        (dev, CheckConfig::with_metadata(vec![meta]))
    }

    #[test]
    fn clean_commit_protocol_passes() {
        let (d, cfg) = traced();
        // data → persist → commit record → persist → commit note.
        d.write(1024, &[7u8; 128]);
        d.persist(1024, 128);
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean(), "unexpected violations: {r}");
        assert_eq!(r.commits, 1);
    }

    #[test]
    fn missing_flush_detected() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 128]); // never flushed
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(
            r.count(Rule::MissingFlush),
            2,
            "one violation per dirty line: {r}"
        );
        assert_eq!(r.fired_rules(), ["missing-flush"]);
        // Events name the store and the commit.
        let v = &r.violations[0];
        assert_eq!(v.events.len(), 2);
        assert_eq!(v.addr, 1024);
    }

    #[test]
    fn flush_without_fence_detected_at_commit() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.clflush(1024, 64); // flushed, but no sfence of its own…
        d.atomic_write_u64(0, 1);
        d.persist(0, 8); // …the commit's fence carries it
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::FlushWithoutFence), 1, "{r}");
        assert_eq!(r.fired_rules(), ["flush-without-fence"]);
    }

    #[test]
    fn strict_flags_epoch_open_at_crash() {
        let (d, mut cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.clflush(1024, 64);
        d.crash(nvmsim::CrashPolicy::LoseVolatile);
        cfg.strict = true;
        let r = check(&d.take_trace(), cfg.clone());
        assert_eq!(r.count(Rule::FlushWithoutFence), 1);
        // Non-strict shadow mode tolerates it (crash injection trips
        // mid-epoch by design).
        let (d2, _) = traced();
        d2.write(1024, &[7u8; 64]);
        d2.clflush(1024, 64);
        d2.crash(nvmsim::CrashPolicy::LoseVolatile);
        cfg.strict = false;
        assert!(check(&d2.take_trace(), cfg).is_clean());
    }

    #[test]
    fn torn_update_detected_on_durable_metadata() {
        let (d, cfg) = traced();
        // Make the metadata line durable first (e.g. formatted earlier).
        d.write(64, &[0u8; 16]);
        d.persist(64, 16);
        // Now a plain two-word update — recovery could see it half-done.
        d.write(64, &[9u8; 16]);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::TornUpdate), 1, "{r}");
        assert_eq!(r.fired_rules(), ["torn-update"]);
    }

    #[test]
    fn torn_update_not_flagged_for_atomic_or_fresh_or_data() {
        let (d, cfg) = traced();
        // 16-byte atomic to durable metadata: fine.
        d.write(64, &[0u8; 16]);
        d.persist(64, 16);
        d.atomic_write_u128(64, 42);
        // Plain multi-word to *fresh* metadata (formatting): fine.
        d.write(128, &[0u8; 64]);
        // Plain multi-word outside metadata ranges (bulk data): fine.
        d.write(2048, &[5u8; 512]);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::TornUpdate), 0, "{r}");
    }

    #[test]
    fn redundant_flush_counted_not_failed() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 64]);
        d.persist(1024, 64);
        d.clflush(1024, 64); // clean line
        d.clflush(1024, 64); // again
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean());
        assert_eq!(r.redundant_flushes, 2);
        assert_eq!(r.redundant_flush_events.len(), 2);
    }

    #[test]
    fn fence_without_flush_counted_not_failed() {
        let (d, cfg) = traced();
        d.sfence();
        d.write(1024, &[1u8; 8]);
        d.persist(1024, 8);
        d.sfence();
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean());
        assert_eq!(r.empty_fences, 2);
    }

    #[test]
    fn rewrite_after_flush_is_missing_flush() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 8]);
        d.persist(1024, 8);
        d.write(1024, &[2u8; 8]); // re-dirtied, never re-flushed
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::MissingFlush), 1, "{r}");
    }

    #[test]
    fn crash_clears_commit_window() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 8]); // dirty…
        d.crash(nvmsim::CrashPolicy::LoseVolatile); // …but lost with the crash
        let _ = d.read_u64(0); // recovery looks around
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8); // recovery's closing commit
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.crashes, 1);
    }

    #[test]
    fn incremental_drains_match_one_shot() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        let part1 = d.take_trace();
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let part2 = d.take_trace();
        let mut c = Checker::new(cfg.clone());
        c.push_all(&part1);
        c.push_all(&part2);
        let inc = c.finish();

        let (d2, _) = traced();
        d2.write(1024, &[7u8; 64]);
        d2.atomic_write_u64(0, 1);
        d2.persist(0, 8);
        d2.note_commit(0, 8);
        let whole = check(&d2.take_trace(), cfg);
        assert_eq!(
            inc.count(Rule::MissingFlush),
            whole.count(Rule::MissingFlush)
        );
        assert_eq!(inc.events, whole.events);
    }

    #[test]
    fn report_display_names_rules() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        let text = r.to_string();
        assert!(text.contains("missing-flush"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    // ---- persistrace fixtures: hand-built multi-thread traces ----------
    //
    // The analyzer is pure, so deliberately-racy interleavings are easiest
    // to pin down as synthetic `TracedOp` streams with explicit thread
    // tags — no real threads, fully deterministic ordinals.

    use nvmsim::TraceEvent as E;

    fn op(seq: u64, thread: u32, event: E) -> TracedOp {
        TracedOp::on_thread(seq, thread, event)
    }

    #[test]
    fn persist_race_fires_with_ordinals_and_edge() {
        // Two threads store into line 0 while it is unfenced, no sync.
        let trace = [
            op(0, 0, E::Store { addr: 0, len: 8 }),
            op(1, 1, E::Store { addr: 8, len: 8 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::PersistRace), 1, "{r}");
        let v = &r.violations[0];
        assert_eq!(v.addr, 0);
        assert_eq!(v.events, [0, 1], "cites both store ordinals");
        assert!(
            v.detail.contains("t0#0 -> t1#1"),
            "names the missing edge: {}",
            v.detail
        );
    }

    #[test]
    fn persist_race_reported_once_per_line_and_pair() {
        let trace = [
            op(0, 0, E::Store { addr: 0, len: 8 }),
            op(1, 1, E::Store { addr: 8, len: 8 }),
            op(2, 0, E::Store { addr: 16, len: 8 }),
            op(3, 1, E::Store { addr: 24, len: 8 }),
            op(4, 1, E::Store { addr: 64, len: 8 }), // different line, alone
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::PersistRace), 1, "deduplicated: {r}");
    }

    #[test]
    fn lock_edge_suppresses_persist_race() {
        // Proper release→acquire: the second store is ordered after the
        // first through lock 1.
        let trace = [
            op(0, 0, E::LockAcquire { obj: 1 }),
            op(1, 0, E::Store { addr: 0, len: 8 }),
            op(2, 0, E::LockRelease { obj: 1 }),
            op(3, 1, E::LockAcquire { obj: 1 }),
            op(4, 1, E::Store { addr: 8, len: 8 }),
            op(5, 1, E::LockRelease { obj: 1 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn lockset_fallback_suppresses_without_hb_edge() {
        // Both threads hold lock 1 per the lockset, but the release that
        // would order them was elided from the trace: no HB edge exists,
        // yet the Eraser fallback suppresses the report.
        let trace = [
            op(0, 0, E::LockAcquire { obj: 1 }),
            op(1, 1, E::LockAcquire { obj: 1 }),
            op(2, 0, E::Store { addr: 0, len: 8 }),
            op(3, 1, E::Store { addr: 8, len: 8 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::PersistRace), 0, "{r}");
    }

    #[test]
    fn atomic_release_acquire_creates_edge() {
        let trace = [
            op(0, 0, E::Store { addr: 0, len: 8 }),
            op(1, 0, E::AtomicStoreRelease { obj: 9 }),
            op(2, 1, E::AtomicLoadAcquire { obj: 9 }),
            op(3, 1, E::Store { addr: 8, len: 8 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn cross_thread_flush_dependency_fires() {
        // t1 flushes the line t0 stored, with no edge from the store.
        let trace = [
            op(0, 0, E::Store { addr: 0, len: 8 }),
            op(
                1,
                1,
                E::Clflush {
                    line: 0,
                    staged: true,
                },
            ),
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::CrossThreadFlushDependency), 1, "{r}");
        let v = &r.violations[0];
        assert_eq!(v.events, [0, 1]);
        assert!(v.detail.contains("t0#0 -> t1#1"), "{}", v.detail);
        // With a sync edge between store and flush: clean.
        let ok = [
            op(0, 0, E::Store { addr: 0, len: 8 }),
            op(1, 0, E::LockRelease { obj: 2 }),
            op(2, 1, E::LockAcquire { obj: 2 }),
            op(
                3,
                1,
                E::Clflush {
                    line: 0,
                    staged: true,
                },
            ),
        ];
        assert!(check(&ok, CheckConfig::default()).is_clean());
    }

    /// t0 persists data; t1 persists its own commit record and annotates
    /// the commit — without ever synchronizing with t0's fence.
    fn unordered_commit_trace(with_lock: bool) -> Vec<TracedOp> {
        let mut t = Vec::new();
        let mut seq = 0u64;
        let mut push = |thread: u32, e: E, t: &mut Vec<TracedOp>| {
            t.push(op(seq, thread, e));
            seq += 1;
        };
        if with_lock {
            push(0, E::LockAcquire { obj: 1 }, &mut t);
        }
        push(0, E::Store { addr: 64, len: 8 }, &mut t);
        push(
            0,
            E::Clflush {
                line: 1,
                staged: true,
            },
            &mut t,
        );
        push(0, E::Sfence { staged_lines: 1 }, &mut t);
        if with_lock {
            push(0, E::LockRelease { obj: 1 }, &mut t);
            push(1, E::LockAcquire { obj: 1 }, &mut t);
        }
        push(1, E::AtomicStore { addr: 0, len: 8 }, &mut t);
        push(
            1,
            E::Clflush {
                line: 0,
                staged: true,
            },
            &mut t,
        );
        push(1, E::Sfence { staged_lines: 1 }, &mut t);
        push(1, E::Commit { addr: 0, len: 8 }, &mut t);
        if with_lock {
            push(1, E::LockRelease { obj: 1 }, &mut t);
        }
        t
    }

    #[test]
    fn unordered_commit_fires_without_sync_edge() {
        let r = check(&unordered_commit_trace(false), CheckConfig::default());
        assert_eq!(r.count(Rule::UnorderedCommit), 1, "{r}");
        assert_eq!(r.fired_rules(), ["unordered-commit"]);
        let v = &r.violations[0];
        assert_eq!(v.addr, 64, "cites the data line");
        assert_eq!(v.events, [2, 6], "cites t0's fence and t1's commit");
        assert!(v.detail.contains("t0#2 -> t1#6"), "{}", v.detail);
    }

    #[test]
    fn unordered_commit_clean_under_lock_handoff() {
        let r = check(&unordered_commit_trace(true), CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn single_threaded_traces_never_race() {
        // The whole existing corpus runs on one thread; spot-check that a
        // gnarly single-thread interleaving stays race-free.
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.clflush(1024, 64);
        d.write(1024, &[8u8; 64]);
        d.sfence();
        d.persist(1024, 64);
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        for rule in [
            Rule::PersistRace,
            Rule::UnorderedCommit,
            Rule::CrossThreadFlushDependency,
        ] {
            assert_eq!(r.count(rule), 0, "{r}");
        }
    }

    #[test]
    fn mutex_serialized_multi_thread_commits_are_clean() {
        // The pool's current commit discipline, in miniature: each thread
        // takes the shard lock, stores/persists data and its commit
        // record, annotates, releases. Two threads, same lines.
        let mut trace = Vec::new();
        let mut seq = 0u64;
        for thread in [0u32, 1, 0, 1] {
            for e in [
                E::LockAcquire { obj: 7 },
                E::Store { addr: 512, len: 64 },
                E::Clflush {
                    line: 8,
                    staged: true,
                },
                E::Sfence { staged_lines: 1 },
                E::AtomicStore { addr: 0, len: 8 },
                E::Clflush {
                    line: 0,
                    staged: true,
                },
                E::Sfence { staged_lines: 1 },
                E::Commit { addr: 0, len: 8 },
                E::LockRelease { obj: 7 },
            ] {
                trace.push(op(seq, thread, e));
                seq += 1;
            }
        }
        let r = check(&trace, CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    // ---- multi-device (merged shard) traces ----------------------------

    fn on_device(seq: u64, thread: u32, device: u32, event: E) -> TracedOp {
        let mut o = op(seq, thread, event);
        o.device = device;
        o
    }

    #[test]
    fn fences_and_commits_are_scoped_per_device() {
        // Round-robin merge of two clean single-shard commit protocols:
        // device 1's sfence interleaves into device 0's open epoch and
        // vice versa. With per-device epochs this is clean; a global
        // epoch would let each shard's fence drain the other's lines and
        // flag flush-without-fence / missing-flush everywhere.
        let proto = |d: u32| {
            vec![
                E::Store {
                    addr: 1024,
                    len: 64,
                },
                E::Clflush {
                    line: 16,
                    staged: true,
                },
                E::Sfence { staged_lines: 1 },
                E::AtomicStore { addr: 0, len: 8 },
                E::Clflush {
                    line: 0,
                    staged: true,
                },
                E::Sfence { staged_lines: 1 },
                E::Commit { addr: 0, len: 8 },
            ]
            .into_iter()
            .map(move |e| {
                // Rebase device 1 like merge_shard_traces would.
                let base = d as usize * 4096;
                match e {
                    E::Store { addr, len } => E::Store {
                        addr: addr + base,
                        len,
                    },
                    E::AtomicStore { addr, len } => E::AtomicStore {
                        addr: addr + base,
                        len,
                    },
                    E::Clflush { line, staged } => E::Clflush {
                        line: line + base / CACHE_LINE,
                        staged,
                    },
                    E::Commit { addr, len } => E::Commit {
                        addr: addr + base,
                        len,
                    },
                    other => other,
                }
            })
        };
        let mut trace = Vec::new();
        let mut seq = 0u64;
        for (a, b) in proto(0).zip(proto(1)) {
            trace.push(on_device(seq, 0, 0, a));
            trace.push(on_device(seq + 1, 1, 1, b));
            seq += 2;
        }
        let r = check(&trace, CheckConfig::default());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.commits, 2);
    }

    #[test]
    fn commit_judges_only_its_own_devices_window() {
        // Device 1 has a dirty, never-flushed line in flight when device
        // 0's commit lands: not device 0's problem. Device 1's own commit
        // later must still flag it.
        let trace = [
            on_device(0, 1, 1, E::Store { addr: 4096, len: 8 }),
            on_device(1, 0, 0, E::AtomicStore { addr: 0, len: 8 }),
            on_device(
                2,
                0,
                0,
                E::Clflush {
                    line: 0,
                    staged: true,
                },
            ),
            on_device(3, 0, 0, E::Sfence { staged_lines: 1 }),
            on_device(4, 0, 0, E::Commit { addr: 0, len: 8 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::MissingFlush), 0, "{r}");

        let mut with_d1_commit = trace.to_vec();
        with_d1_commit.extend([
            on_device(5, 1, 1, E::AtomicStore { addr: 4160, len: 8 }),
            on_device(
                6,
                1,
                1,
                E::Clflush {
                    line: 65,
                    staged: true,
                },
            ),
            on_device(7, 1, 1, E::Sfence { staged_lines: 1 }),
            on_device(8, 1, 1, E::Commit { addr: 4160, len: 8 }),
        ]);
        let r = check(&with_d1_commit, CheckConfig::default());
        assert_eq!(r.count(Rule::MissingFlush), 1, "{r}");
        assert_eq!(r.violations[0].addr, 4096);
    }

    #[test]
    fn crash_clears_only_the_crashed_device() {
        // Device 0 crashes with device 1's store in flight; device 1's
        // commit must still see its own dirty line.
        let trace = [
            on_device(0, 1, 1, E::Store { addr: 4096, len: 8 }),
            on_device(1, 0, 0, E::Store { addr: 64, len: 8 }),
            on_device(2, 0, 0, E::Crash),
            on_device(3, 1, 1, E::AtomicStore { addr: 4160, len: 8 }),
            on_device(
                4,
                1,
                1,
                E::Clflush {
                    line: 65,
                    staged: true,
                },
            ),
            on_device(5, 1, 1, E::Sfence { staged_lines: 1 }),
            on_device(6, 1, 1, E::Commit { addr: 4160, len: 8 }),
        ];
        let r = check(&trace, CheckConfig::default());
        assert_eq!(r.count(Rule::MissingFlush), 1, "{r}");
        assert_eq!(r.violations[0].addr, 4096);
        assert_eq!(r.crashes, 1);
    }

    // ---- JSON schema stability -----------------------------------------

    #[test]
    fn json_schema_is_stable() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 128]); // 2 lines, never flushed
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let j = check(&d.take_trace(), cfg).to_json().render();
        // Top-level keys, in order.
        assert!(j.starts_with(r#"{"schema":1,"events":5,"commits":1,"crashes":0,"clean":false,"#));
        // The counts object always lists every rule by its stable name.
        assert!(
            j.contains(
                r#""counts":{"missing-flush":2,"flush-without-fence":0,"torn-update":0,"persist-race":0,"unordered-commit":0,"cross-thread-flush-dependency":0,"redundant-flush":0,"fence-without-flush":0}"#
            ),
            "{j}"
        );
        // Violations carry rule name, line address, and ordinal citations.
        assert!(
            j.contains(r#""rule":"missing-flush","addr":1024,"events":[0,4]"#),
            "{j}"
        );
        assert!(j.contains(r#""redundant_flush_events":[]"#), "{j}");
        assert!(j.contains(r#""empty_fence_events":[]"#), "{j}");
    }

    #[test]
    fn json_counts_race_rules() {
        let r = check(&unordered_commit_trace(false), CheckConfig::default());
        let j = r.to_json().render();
        assert!(j.contains(r#""unordered-commit":1"#), "{j}");
        assert!(j.contains(r#""clean":false"#), "{j}");
        assert!(j.contains(r#""events":[2,6]"#), "{j}");
    }
}
