//! # persistcheck — persist-ordering analysis over nvmsim traces
//!
//! A `pmemcheck`-style rule engine: replay an [`nvmsim`] event trace
//! (recorded with [`NvmConfig::with_tracing`](nvmsim::NvmConfig)) and
//! report stores that a crash could expose as lost, reordered, or torn —
//! plus persistence-instruction waste.
//!
//! ## Rules
//!
//! Correctness (any hit fails the check):
//!
//! * **missing-flush** — a line stored inside the commit window (since the
//!   previous commit/crash) is still dirty when the commit record
//!   persists: a crash right after the commit point can lose data the
//!   commit record claims durable.
//! * **flush-without-fence** — a commit-window line was flushed but only
//!   became durable on the *same* `sfence` as the commit record itself.
//!   Within one fence epoch write-backs are unordered, so a crash inside
//!   that epoch can persist the commit record without the data. (With
//!   [`CheckConfig::strict`], a fence epoch still open at a crash or at
//!   the end of the trace is also flagged; shadow-mode checking leaves
//!   this off because crash injection legitimately trips mid-epoch.)
//! * **torn-update** — a plain multi-word store to a single metadata cache
//!   line that was durable before: plain stores only have 8-byte failure
//!   atomicity, so recovery can observe the line half-updated. Metadata
//!   updates must go through `atomic_write_u64`/`atomic_write_u128`.
//!
//! Performance lints (reported separately, never fail the check):
//!
//! * **redundant-flush** — `clflush` of a clean line: costs latency,
//!   persists nothing.
//! * **fence-without-flush** — `sfence` with an empty flush epoch: orders
//!   nothing.
//!
//! The analyzer is protocol-agnostic: it keys on
//! [`TraceEvent::Commit`](nvmsim::TraceEvent) annotations emitted by the
//! commit path ([`NvmDevice::note_commit`](nvmsim::NvmDevice)) and on the
//! caller-declared metadata address ranges in [`CheckConfig`].

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use nvmsim::{TraceEvent, TracedOp, CACHE_LINE, WORD_SIZE};

/// How many example event ordinals each perf-lint counter retains.
const LINT_EXAMPLES: usize = 8;

/// Analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct CheckConfig {
    /// Byte ranges holding crash-critical metadata (headers, ring slots,
    /// entry tables). The torn-update rule only fires inside these ranges;
    /// bulk data regions are exempt because block payloads are guarded by
    /// the commit protocol, not by store atomicity.
    pub metadata_ranges: Vec<Range<usize>>,
    /// Also flag fence epochs left open at a crash or at the end of the
    /// trace as flush-without-fence. Off in shadow mode: injected crashes
    /// land mid-epoch by design.
    pub strict: bool,
}

impl CheckConfig {
    /// Config with the given metadata ranges, non-strict.
    pub fn with_metadata(metadata_ranges: Vec<Range<usize>>) -> Self {
        CheckConfig {
            metadata_ranges,
            strict: false,
        }
    }

    fn overlaps_metadata(&self, start: usize, end: usize) -> bool {
        self.metadata_ranges
            .iter()
            .any(|r| start < r.end && r.start < end)
    }
}

/// The five analyzer rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    MissingFlush,
    FlushWithoutFence,
    TornUpdate,
    RedundantFlush,
    FenceWithoutFlush,
}

impl Rule {
    /// Stable kebab-case rule name, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MissingFlush => "missing-flush",
            Rule::FlushWithoutFence => "flush-without-fence",
            Rule::TornUpdate => "torn-update",
            Rule::RedundantFlush => "redundant-flush",
            Rule::FenceWithoutFlush => "fence-without-flush",
        }
    }

    /// Whether a hit means possible data loss (vs. wasted work).
    pub fn is_correctness(self) -> bool {
        matches!(
            self,
            Rule::MissingFlush | Rule::FlushWithoutFence | Rule::TornUpdate
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One correctness violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    /// Base address of the affected cache line.
    pub addr: usize,
    /// Trace ordinals of the responsible events (e.g. the store and the
    /// commit that exposed it).
    pub events: Vec<u64>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let evs: Vec<String> = self.events.iter().map(|e| format!("#{e}")).collect();
        write!(
            f,
            "{} @ {:#x} [{}]: {}",
            self.rule.name(),
            self.addr,
            evs.join(", "),
            self.detail
        )
    }
}

/// Analysis result: correctness violations plus perf-lint counters.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Correctness violations (missing-flush, flush-without-fence,
    /// torn-update), in trace order.
    pub violations: Vec<Violation>,
    /// Number of clean-line `clflush`es (redundant-flush lint).
    pub redundant_flushes: u64,
    /// First few trace ordinals of redundant flushes.
    pub redundant_flush_events: Vec<u64>,
    /// Number of no-op `sfence`s (fence-without-flush lint).
    pub empty_fences: u64,
    /// First few trace ordinals of no-op fences.
    pub empty_fence_events: Vec<u64>,
    /// Commit annotations seen.
    pub commits: u64,
    /// Crashes seen.
    pub crashes: u64,
    /// Events analyzed.
    pub events: u64,
}

impl Report {
    /// True when no correctness violation was found (perf lints may
    /// still be non-zero).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of correctness violations of `rule`.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Names of the rules that fired, deduplicated, in trace order.
    pub fn fired_rules(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for v in &self.violations {
            if !out.contains(&v.rule.name()) {
                out.push(v.rule.name());
            }
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "persistcheck: {} events, {} commits, {} crashes",
            self.events, self.commits, self.crashes
        )?;
        writeln!(f, "  correctness violations: {}", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "    {v}")?;
        }
        let fmt_examples = |evs: &[u64]| -> String {
            if evs.is_empty() {
                String::new()
            } else {
                let s: Vec<String> = evs.iter().map(|e| format!("#{e}")).collect();
                format!(" (first at {})", s.join(", "))
            }
        };
        writeln!(
            f,
            "  redundant-flush      : {} clean-line clflush{}{}",
            self.redundant_flushes,
            if self.redundant_flushes == 1 {
                ""
            } else {
                "es"
            },
            fmt_examples(&self.redundant_flush_events)
        )?;
        writeln!(
            f,
            "  fence-without-flush  : {} no-op sfence{}{}",
            self.empty_fences,
            if self.empty_fences == 1 { "" } else { "s" },
            fmt_examples(&self.empty_fence_events)
        )?;
        write!(
            f,
            "verdict: {}",
            if self.is_clean() { "CLEAN" } else { "FAIL" }
        )
    }
}

/// Per-cache-line analyzer state.
#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    /// Stored since last flush.
    dirty: bool,
    /// Flushed into the currently open fence epoch.
    staged: bool,
    /// Ordinal of the most recent flush of this line.
    last_flush_seq: u64,
    /// Fence epoch (1-based sfence count) at which the line last became
    /// durable; 0 = never fenced.
    last_fence: u64,
    /// Ever made durable by a fence (used as the torn-update
    /// precondition: formatting fresh, never-persisted space with plain
    /// stores is fine).
    durable_once: bool,
}

/// Incremental trace analyzer. Feed events with [`Checker::push`] (in
/// trace order, possibly across multiple drains of the device trace), then
/// read [`Checker::report`] or call [`Checker::finish`].
#[derive(Debug)]
pub struct Checker {
    cfg: CheckConfig,
    lines: HashMap<usize, LineState>,
    /// Lines flushed into the currently open fence epoch.
    epoch_lines: Vec<usize>,
    /// Lines stored since the last commit/crash → ordinal of latest store.
    window: HashMap<usize, u64>,
    /// sfences seen so far (1-based epoch ids).
    fences: u64,
    last_seq: Option<u64>,
    report: Report,
}

impl Checker {
    pub fn new(cfg: CheckConfig) -> Self {
        Checker {
            cfg,
            lines: HashMap::new(),
            epoch_lines: Vec::new(),
            window: HashMap::new(),
            fences: 0,
            last_seq: None,
            report: Report::default(),
        }
    }

    /// Feeds one event. Events must arrive in `seq` order.
    pub fn push(&mut self, op: &TracedOp) {
        if let Some(prev) = self.last_seq {
            debug_assert!(
                op.seq > prev,
                "trace events out of order: {} after {prev}",
                op.seq
            );
        }
        self.last_seq = Some(op.seq);
        self.report.events += 1;
        match op.event {
            TraceEvent::Store { addr, len } => self.on_store(op.seq, addr, len, false),
            TraceEvent::AtomicStore { addr, len } => self.on_store(op.seq, addr, len, true),
            TraceEvent::Clflush { line, staged } => self.on_clflush(op.seq, line, staged),
            TraceEvent::Sfence { staged_lines } => self.on_sfence(op.seq, staged_lines),
            TraceEvent::Commit { addr, len } => self.on_commit(op.seq, addr, len),
            TraceEvent::Crash => self.on_crash(op.seq),
            TraceEvent::ReadAfterRecovery { .. } => {}
        }
    }

    /// Feeds a batch of events.
    pub fn push_all(&mut self, ops: &[TracedOp]) {
        for op in ops {
            self.push(op);
        }
    }

    /// Snapshot of the findings so far (strict end-of-trace checks not
    /// applied — use [`Checker::finish`] for those).
    pub fn report(&self) -> Report {
        self.report.clone()
    }

    /// Consumes the checker, applying strict end-of-trace checks when
    /// configured, and returns the final report.
    pub fn finish(mut self) -> Report {
        if self.cfg.strict {
            let seq = self.last_seq.map_or(0, |s| s + 1);
            self.flag_open_epoch(seq, "end of trace");
        }
        self.report
    }

    fn on_store(&mut self, seq: u64, addr: usize, len: usize, atomic: bool) {
        if len == 0 {
            return;
        }
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        for line in first..=last {
            let base = line * CACHE_LINE;
            let start = addr.max(base);
            let end = (addr + len).min(base + CACHE_LINE);
            let ls = self.lines.entry(line).or_default();
            let words = (end - 1) / WORD_SIZE - start / WORD_SIZE + 1;
            if !atomic && words >= 2 && ls.durable_once && self.cfg.overlaps_metadata(start, end) {
                self.report.violations.push(Violation {
                    rule: Rule::TornUpdate,
                    addr: base,
                    events: vec![seq],
                    detail: format!(
                        "plain store of {} bytes ({words} words) to durable metadata line \
                         {base:#x}; only 8-byte atomicity — use atomic_write_u64/u128",
                        end - start
                    ),
                });
            }
            let ls = self.lines.entry(line).or_default();
            ls.dirty = true;
            self.window.insert(line, seq);
        }
    }

    fn on_clflush(&mut self, seq: u64, line: usize, staged: bool) {
        if staged {
            let ls = self.lines.entry(line).or_default();
            ls.dirty = false;
            if !ls.staged {
                ls.staged = true;
                self.epoch_lines.push(line);
            }
            ls.last_flush_seq = seq;
        } else {
            self.report.redundant_flushes += 1;
            if self.report.redundant_flush_events.len() < LINT_EXAMPLES {
                self.report.redundant_flush_events.push(seq);
            }
        }
    }

    fn on_sfence(&mut self, seq: u64, staged_lines: usize) {
        self.fences += 1;
        if staged_lines == 0 {
            self.report.empty_fences += 1;
            if self.report.empty_fence_events.len() < LINT_EXAMPLES {
                self.report.empty_fence_events.push(seq);
            }
        }
        let fences = self.fences;
        for line in self.epoch_lines.drain(..) {
            if let Some(ls) = self.lines.get_mut(&line) {
                ls.staged = false;
                ls.last_fence = fences;
                ls.durable_once = true;
            }
        }
    }

    fn on_commit(&mut self, seq: u64, addr: usize, len: usize) {
        self.report.commits += 1;
        let rec_first = addr / CACHE_LINE;
        let rec_last = if len == 0 {
            rec_first
        } else {
            (addr + len - 1) / CACHE_LINE
        };
        // Deterministic report order: judge window lines oldest-store first.
        let mut entries: Vec<(usize, u64)> = self.window.iter().map(|(&l, &s)| (l, s)).collect();
        entries.sort_by_key(|&(l, s)| (s, l));
        for (line, store_seq) in entries {
            if (rec_first..=rec_last).contains(&line) {
                continue; // the commit record itself
            }
            let Some(ls) = self.lines.get(&line) else {
                continue;
            };
            let base = line * CACHE_LINE;
            if ls.dirty {
                self.report.violations.push(Violation {
                    rule: Rule::MissingFlush,
                    addr: base,
                    events: vec![store_seq, seq],
                    detail: format!(
                        "line {base:#x} stored at #{store_seq} never flushed before the \
                         commit record persisted at #{seq}; a crash now loses committed data"
                    ),
                });
            } else if ls.last_fence == self.fences {
                self.report.violations.push(Violation {
                    rule: Rule::FlushWithoutFence,
                    addr: base,
                    events: vec![ls.last_flush_seq, seq],
                    detail: format!(
                        "line {base:#x} flushed at #{} but only fenced together with the \
                         commit record at #{seq}; within one fence epoch write-backs are \
                         unordered, so the commit record can persist first",
                        ls.last_flush_seq
                    ),
                });
            }
        }
        self.window.clear();
    }

    fn on_crash(&mut self, seq: u64) {
        self.report.crashes += 1;
        if self.cfg.strict {
            self.flag_open_epoch(seq, "crash");
        }
        // The device drops volatile state at a crash; mirror it.
        for ls in self.lines.values_mut() {
            ls.dirty = false;
            ls.staged = false;
        }
        self.epoch_lines.clear();
        self.window.clear();
    }

    fn flag_open_epoch(&mut self, seq: u64, at: &str) {
        let open = std::mem::take(&mut self.epoch_lines);
        for line in open {
            let Some(ls) = self.lines.get(&line) else {
                continue;
            };
            if !ls.staged {
                continue;
            }
            let base = line * CACHE_LINE;
            self.report.violations.push(Violation {
                rule: Rule::FlushWithoutFence,
                addr: base,
                events: vec![ls.last_flush_seq, seq],
                detail: format!(
                    "line {base:#x} flushed at #{} but its fence epoch was still open at \
                     {at} (#{seq}); the write-back was not yet ordered durable",
                    ls.last_flush_seq
                ),
            });
        }
    }
}

/// One-shot analysis of a complete trace.
pub fn check(trace: &[TracedOp], cfg: CheckConfig) -> Report {
    let mut c = Checker::new(cfg);
    c.push_all(trace);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    /// A traced 4 KiB device; metadata = first 256 bytes.
    fn traced() -> (nvmsim::Nvm, CheckConfig) {
        let dev = NvmDevice::new(
            NvmConfig::new(4096, NvmTech::Pcm).with_tracing(),
            SimClock::new(),
        );
        (dev, CheckConfig::with_metadata(vec![0..256]))
    }

    #[test]
    fn clean_commit_protocol_passes() {
        let (d, cfg) = traced();
        // data → persist → commit record → persist → commit note.
        d.write(1024, &[7u8; 128]);
        d.persist(1024, 128);
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean(), "unexpected violations: {r}");
        assert_eq!(r.commits, 1);
    }

    #[test]
    fn missing_flush_detected() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 128]); // never flushed
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(
            r.count(Rule::MissingFlush),
            2,
            "one violation per dirty line: {r}"
        );
        assert_eq!(r.fired_rules(), ["missing-flush"]);
        // Events name the store and the commit.
        let v = &r.violations[0];
        assert_eq!(v.events.len(), 2);
        assert_eq!(v.addr, 1024);
    }

    #[test]
    fn flush_without_fence_detected_at_commit() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.clflush(1024, 64); // flushed, but no sfence of its own…
        d.atomic_write_u64(0, 1);
        d.persist(0, 8); // …the commit's fence carries it
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::FlushWithoutFence), 1, "{r}");
        assert_eq!(r.fired_rules(), ["flush-without-fence"]);
    }

    #[test]
    fn strict_flags_epoch_open_at_crash() {
        let (d, mut cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.clflush(1024, 64);
        d.crash(nvmsim::CrashPolicy::LoseVolatile);
        cfg.strict = true;
        let r = check(&d.take_trace(), cfg.clone());
        assert_eq!(r.count(Rule::FlushWithoutFence), 1);
        // Non-strict shadow mode tolerates it (crash injection trips
        // mid-epoch by design).
        let (d2, _) = traced();
        d2.write(1024, &[7u8; 64]);
        d2.clflush(1024, 64);
        d2.crash(nvmsim::CrashPolicy::LoseVolatile);
        cfg.strict = false;
        assert!(check(&d2.take_trace(), cfg).is_clean());
    }

    #[test]
    fn torn_update_detected_on_durable_metadata() {
        let (d, cfg) = traced();
        // Make the metadata line durable first (e.g. formatted earlier).
        d.write(64, &[0u8; 16]);
        d.persist(64, 16);
        // Now a plain two-word update — recovery could see it half-done.
        d.write(64, &[9u8; 16]);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::TornUpdate), 1, "{r}");
        assert_eq!(r.fired_rules(), ["torn-update"]);
    }

    #[test]
    fn torn_update_not_flagged_for_atomic_or_fresh_or_data() {
        let (d, cfg) = traced();
        // 16-byte atomic to durable metadata: fine.
        d.write(64, &[0u8; 16]);
        d.persist(64, 16);
        d.atomic_write_u128(64, 42);
        // Plain multi-word to *fresh* metadata (formatting): fine.
        d.write(128, &[0u8; 64]);
        // Plain multi-word outside metadata ranges (bulk data): fine.
        d.write(2048, &[5u8; 512]);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::TornUpdate), 0, "{r}");
    }

    #[test]
    fn redundant_flush_counted_not_failed() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 64]);
        d.persist(1024, 64);
        d.clflush(1024, 64); // clean line
        d.clflush(1024, 64); // again
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean());
        assert_eq!(r.redundant_flushes, 2);
        assert_eq!(r.redundant_flush_events.len(), 2);
    }

    #[test]
    fn fence_without_flush_counted_not_failed() {
        let (d, cfg) = traced();
        d.sfence();
        d.write(1024, &[1u8; 8]);
        d.persist(1024, 8);
        d.sfence();
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean());
        assert_eq!(r.empty_fences, 2);
    }

    #[test]
    fn rewrite_after_flush_is_missing_flush() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 8]);
        d.persist(1024, 8);
        d.write(1024, &[2u8; 8]); // re-dirtied, never re-flushed
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        assert_eq!(r.count(Rule::MissingFlush), 1, "{r}");
    }

    #[test]
    fn crash_clears_commit_window() {
        let (d, cfg) = traced();
        d.write(1024, &[1u8; 8]); // dirty…
        d.crash(nvmsim::CrashPolicy::LoseVolatile); // …but lost with the crash
        let _ = d.read_u64(0); // recovery looks around
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8); // recovery's closing commit
        let r = check(&d.take_trace(), cfg);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.crashes, 1);
    }

    #[test]
    fn incremental_drains_match_one_shot() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        let part1 = d.take_trace();
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let part2 = d.take_trace();
        let mut c = Checker::new(cfg.clone());
        c.push_all(&part1);
        c.push_all(&part2);
        let inc = c.finish();

        let (d2, _) = traced();
        d2.write(1024, &[7u8; 64]);
        d2.atomic_write_u64(0, 1);
        d2.persist(0, 8);
        d2.note_commit(0, 8);
        let whole = check(&d2.take_trace(), cfg);
        assert_eq!(
            inc.count(Rule::MissingFlush),
            whole.count(Rule::MissingFlush)
        );
        assert_eq!(inc.events, whole.events);
    }

    #[test]
    fn report_display_names_rules() {
        let (d, cfg) = traced();
        d.write(1024, &[7u8; 64]);
        d.atomic_write_u64(0, 1);
        d.persist(0, 8);
        d.note_commit(0, 8);
        let r = check(&d.take_trace(), cfg);
        let text = r.to_string();
        assert!(text.contains("missing-flush"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }
}
