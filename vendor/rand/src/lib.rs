//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation: `StdRng` (xoshiro256++
//! seeded via SplitMix64), `SeedableRng::seed_from_u64`, and the `Rng`
//! methods the simulators call (`gen`, `gen_range`, `gen_bool`, `fill`).
//!
//! Deterministic for a given seed, which is all the simulators rely on; it
//! makes no cryptographic or statistical-test-suite claims.

#![allow(clippy::all, clippy::pedantic)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types drawable uniformly from a range. The generic [`SampleRange`]
/// impls below hang off this trait, mirroring upstream `rand`'s structure
/// so type inference flows from the use site into range literals
/// (`rng.gen_range(0..100) < some_u32` infers `u32`).
pub trait SampleUniform: Sized {
    /// Uniform value in `[lo, hi]` if `inclusive`, else `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Wrapping u128 arithmetic handles signed ranges: the
                // two's-complement difference is the true span.
                let mut span = (hi as u128).wrapping_sub(lo as u128);
                if inclusive {
                    span = span.wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return u128::standard_sample(rng) as $t;
                    }
                } else {
                    assert!(span > 0, "gen_range: empty range");
                }
                lo.wrapping_add((u128::standard_sample(rng) % span) as $t)
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = r.gen_range(1..=255);
            assert!(w >= 1);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}
