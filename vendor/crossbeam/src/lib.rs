//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{bounded, unbounded, Sender, Receiver}` over `std::sync::mpsc`.
//!
//! The build container has no network access to crates.io; the real
//! `crossbeam` is a drop-in replacement.

#![allow(clippy::all, clippy::pedantic)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Sending half of a channel. Unifies std's `Sender`/`SyncSender` the
    /// way `crossbeam::channel::Sender` does.
    #[derive(Clone, Debug)]
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// An error returned when the receiving half has disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug does not require `T: Debug`, so
    // `send(...).expect(...)` works with any payload type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel of capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_works_across_threads() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
