//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses. The build container has no network access to crates.io, so the
//! property tests link against this minimal implementation.
//!
//! Supported: the `proptest!` macro (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! strategies for integer ranges, tuples, `Just`, `any::<T>()`,
//! `collection::vec`, `option::of`, and `Strategy::prop_map`/`boxed`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its generated inputs instead of a minimised counterexample), and the
//! per-test RNG is seeded deterministically from the test name, so runs
//! are reproducible by construction. `PROPTEST_CASES` overrides the case
//! count, as upstream does.

#![allow(clippy::all, clippy::pedantic)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.below(u64::from(den)) < u64::from(num)
    }
}

/// Deterministic seed derived from the test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Case count, honouring the `PROPTEST_CASES` environment override.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

// ---------------------------------------------------------------------------
// Config and failure plumbing
// ---------------------------------------------------------------------------

/// Mirror of `proptest::test_runner::Config` (the fields this repo uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of one type — the heart of proptest's API.
pub trait Strategy {
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u128() as $t;
                }
                lo.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a default "any value" strategy.
pub trait ArbValue: fmt::Debug + Sized {
    fn arb_value(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb_value(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl ArbValue for bool {
    fn arb_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arb_value(rng)
    }
}

/// `any::<T>()` — any value of `T`.
pub fn any<T: ArbValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: fmt::Debug> Union<V> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.new_value(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{fmt, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Permitted size arguments for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `elem` values with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::{fmt, Strategy, TestRng};

    /// Strategy for `Option<V>` values (3:1 biased towards `Some`).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.ratio(3, 4) {
                Some(self.0.new_value(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports the common upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u32..100, ys in collection::vec(any::<u8>(), 1..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                let mut __rng =
                    $crate::TestRng::new(__seed ^ (u64::from(__case).wrapping_mul(0x9E37_79B9)));
                let __vals = ( $( $crate::Strategy::new_value(&($strat), &mut __rng), )+ );
                let __inputs = format!("{:#?}", __vals);
                let ( $($pat,)+ ) = __vals;
                let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(__e) = __run() {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}):\n{}\ninputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        __seed,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Weighted (or uniform) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let s = (0u16..100, 1u8..=7, any::<u64>());
        for _ in 0..500 {
            let (a, b, _c) = s.new_value(&mut rng);
            assert!(a < 100);
            assert!((1..=7).contains(&b));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::TestRng::new(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.new_value(&mut rng)).count();
        assert!(trues > 800, "trues = {trues}");
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::new(3);
        let s = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..50, ys in crate::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert!(!ys.is_empty(), "vec should be non-empty, got {:?}", ys);
        }

        #[test]
        fn options_appear_both_ways(o in crate::option::of(any::<u8>())) {
            // Either arm is fine; just exercise the strategy.
            prop_assert!(o.is_none() || o.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(false, "x = {}", x);
            }
        }
        always_fails();
    }
}
