//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses. The build container has no network access to crates.io, so the
//! benches link against this minimal harness: it runs each benchmark a
//! fixed number of timed iterations and prints mean wall-clock time per
//! iteration (no statistics, plots, or baselines — swap in the real
//! `criterion` for those).

#![allow(clippy::all, clippy::pedantic)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier, forwarding to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Names acceptable where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// The benchmark runner.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n as u64;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one(id.into_id(), self.sample_size, None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Compatibility no-op (the real criterion parses CLI args here).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one(
            format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            self.throughput,
            f,
        );
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, iters: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = if b.elapsed_ns > 0 {
        b.elapsed_ns / u128::from(iters.max(1))
    } else {
        0
    };
    let rate = match tp {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if per_iter > 0 => {
            let mbps = n as f64 * 1e9 / per_iter as f64 / (1 << 20) as f64;
            format!("  {mbps:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            let eps = n as f64 * 1e9 / per_iter as f64;
            format!("  {eps:10.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{id:<50} {:>12} ns/iter ({iters} iters){rate}",
        format_num(per_iter)
    );
}

fn format_num(n: u128) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Declares a benchmark group, in either of criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        // 3 timed + 1 warm-up call.
        assert_eq!(count, 4);
    }

    #[test]
    fn group_applies_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096));
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("x", 7), &7u64, |b, &v| b.iter(|| seen = v));
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").into_id(), "p");
    }
}
