//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a non-poisoning `Mutex`/`MutexGuard` and `RwLock`, wrapping `std::sync`.
//!
//! The build container has no network access to crates.io; the real
//! `parking_lot` is a drop-in replacement for this module.

#![allow(clippy::all, clippy::pedantic)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that, like `parking_lot::Mutex`, does not
/// poison: a panic while holding the lock leaves the data accessible.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
