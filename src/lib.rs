//! # tinca-repro — reproduction of "Transactional NVM Cache with High
//! Performance and Crash Consistency" (SC '17)
//!
//! This facade crate re-exports the whole reproduction stack:
//!
//! | Crate | Role |
//! |---|---|
//! | [`nvmsim`] | byte-addressable NVM device simulator (clflush/sfence semantics, crash model, technology presets) |
//! | [`blockdev`] | SSD/HDD block-device simulator |
//! | [`tinca`] | **the paper's contribution**: the transactional NVM disk cache |
//! | [`classic`] | the Flashcache-like baseline cache |
//! | [`fssim`] | mini file system with JBD2 / Tinca / no-journal modes, plus [`fssim::stack`] full-stack builders |
//! | [`workloads`] | Fio / TPC-C / Filebench / TeraGen generators |
//! | [`cluster`] | HDFS- and GlusterFS-like replicated clusters |
//! | [`crashsim`] | crash injection + recovery verification |
//! | [`persistcheck`] | pmemcheck-style persist-ordering analyzer over NVM event traces |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `bench`
//! crate's binaries (`cargo run --release -p bench --bin run_all`) for the
//! paper's full evaluation.

pub use blockdev;
pub use classic;
pub use cluster;
pub use crashsim;
pub use fssim;
pub use nvmsim;
pub use persistcheck;
pub use tinca;
pub use ubj;
pub use workloads;
