//! Workspace-level end-to-end tests: whole stacks, both systems, the
//! paper's headline comparisons, at test-sized scale.

use tinca_repro::blockdev::BLOCK_SIZE;
use tinca_repro::fssim::stack::{build, remount, StackConfig, System};
use tinca_repro::nvmsim::CrashPolicy;
use tinca_repro::workloads::fio::{Fio, FioSpec};
use tinca_repro::workloads::measure;

fn fio_spec(read_pct: u32, nvm_bytes: usize) -> FioSpec {
    FioSpec {
        read_pct,
        file_bytes: nvm_bytes as u64 * 5 / 2,
        req_bytes: 4096,
        ops: 2_000,
        fsync_every: 64,
        seed: 0xE2E,
    }
}

/// The paper's headline: same workload, same consistency, Tinca beats the
/// journaling stack because it writes each block once and its metadata
/// updates are 16 B, not 4 KB.
#[test]
fn tinca_beats_classic_on_write_heavy_fio() {
    let mut results = Vec::new();
    for sys in [System::Classic, System::Tinca] {
        let cfg = StackConfig {
            nvm_bytes: 8 << 20,
            ..StackConfig::scaled_local(sys)
        };
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(fio_spec(30, cfg.nvm_bytes));
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        results.push((r.ops_per_sec(), r.clflush_per_op(), r.disk_writes_per_op()));
    }
    let (classic, tinca) = (results[0], results[1]);
    assert!(
        tinca.0 > 1.5 * classic.0,
        "Tinca IOPS {} should beat Classic {} by >1.5x",
        tinca.0,
        classic.0
    );
    assert!(
        tinca.1 < 0.4 * classic.1,
        "Tinca clflush/op {} should be <40% of Classic {}",
        tinca.1,
        classic.1
    );
    assert!(
        tinca.2 < 0.7 * classic.2,
        "Tinca disk writes/op {} should be <70% of Classic {}",
        tinca.2,
        classic.2
    );
}

/// Both systems provide the same data-consistency guarantee: a power cut
/// between operations loses nothing that was fsynced.
#[test]
fn both_systems_keep_fsynced_data_across_crash() {
    for sys in [System::Tinca, System::Classic] {
        let cfg = StackConfig::tiny(sys);
        let mut stack = build(&cfg).unwrap();
        let f = stack.fs.create("precious.dat").unwrap();
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
        stack.fs.write(f, 0, &data).unwrap();
        stack.fs.fsync().unwrap();
        let (nvm, disk, clock) = (stack.nvm.clone(), stack.disk.clone(), stack.clock.clone());
        drop(stack.fs);
        nvm.crash(CrashPolicy::Random(99));
        let mut re = remount(&cfg, nvm, disk, clock).unwrap();
        let f = re.fs.open("precious.dat").unwrap();
        let mut back = vec![0u8; data.len()];
        re.fs.read(f, 0, &mut back).unwrap();
        assert_eq!(back, data, "{} lost fsynced data", sys.name());
        re.fs.backend().check().unwrap();
    }
}

/// Running the same deterministic workload twice gives identical device
/// counters — the whole stack is reproducible.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let cfg = StackConfig {
            nvm_bytes: 4 << 20,
            ..StackConfig::tiny(System::Tinca)
        };
        let mut stack = build(&cfg).unwrap();
        let mut fio = Fio::new(fio_spec(50, cfg.nvm_bytes));
        fio.setup(&mut stack);
        let m = measure(&stack, "det");
        let _ = fio.run(&mut stack);
        let r = m.finish(&stack, 1);
        (
            r.nvm.clflush,
            r.nvm.sfence,
            r.disk.writes,
            r.disk.reads,
            r.sim_ns,
        )
    };
    assert_eq!(run(), run());
}

/// The ablation stack (role switch off) behaves like a journaling cache:
/// correct, but with ~2x the NVM payload writes.
#[test]
fn role_switch_ablation_quantifies_double_writes() {
    let mut lines = Vec::new();
    for sys in [System::Tinca, System::TincaNoRoleSwitch] {
        let cfg = StackConfig::tiny(sys);
        let mut stack = build(&cfg).unwrap();
        let f = stack.fs.create("abl").unwrap();
        let nvm0 = stack.nvm.stats();
        stack.fs.write(f, 0, &vec![7u8; 64 * BLOCK_SIZE]).unwrap();
        stack.fs.fsync().unwrap();
        let d = stack.nvm.stats().delta(&nvm0);
        lines.push(d.lines_written);
        // Data must be intact either way.
        let mut buf = vec![0u8; 64 * BLOCK_SIZE];
        stack.fs.read(f, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7), "{}", sys.name());
    }
    let ratio = lines[1] as f64 / lines[0] as f64;
    assert!(
        (1.6..2.4).contains(&ratio),
        "double-write ablation should roughly double NVM writes: {ratio}"
    );
}

/// Write-hit rate comparison under skewed OLTP: Tinca uses its cache
/// space more efficiently because no journal copies compete for it.
#[test]
fn tinca_cache_space_efficiency_under_oltp() {
    use tinca_repro::workloads::tpcc::{Tpcc, TpccSpec};
    let mut hits = Vec::new();
    for sys in [System::Classic, System::Tinca] {
        let cfg = StackConfig {
            nvm_bytes: 8 << 20,
            ..StackConfig::scaled_local(sys)
        };
        let mut stack = build(&cfg).unwrap();
        let mut tpcc = Tpcc::new(TpccSpec {
            warehouses: 8,
            warehouse_bytes: cfg.nvm_bytes as u64 * 4 / 8,
            users: 8,
            txns: 400,
            seed: 0xE2E2,
        });
        tpcc.setup(&mut stack);
        let before = stack.fs.backend().cache_snapshot();
        let _ = tpcc.run(&mut stack);
        let snap = stack.fs.backend().cache_snapshot().delta(&before);
        hits.push(snap.write_hit_rate().unwrap());
    }
    assert!(
        hits[1] >= hits[0] - 0.02,
        "Tinca write hit rate {} should not trail Classic {}",
        hits[1],
        hits[0]
    );
}
