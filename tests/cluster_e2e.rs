//! Workspace-level cluster tests: replicated stacks behave like the
//! paper's Fig. 9 deployment.

use tinca_repro::cluster::{GlusterCluster, GlusterFilebench, HdfsCluster};
use tinca_repro::fssim::stack::{StackConfig, System};
use tinca_repro::workloads::filebench::Personality;

#[test]
fn hdfs_replication_scales_cluster_work() {
    let cfg = StackConfig::tiny(System::Tinca);
    let one = HdfsCluster::new(4, 1, &cfg, 1 << 20).run_teragen(4 << 20, 16 << 10);
    let three = HdfsCluster::new(4, 3, &cfg, 1 << 20).run_teragen(4 << 20, 16 << 10);
    // Replication multiplies aggregate cache traffic ~3x.
    let ratio = three.total_clflush() as f64 / one.total_clflush() as f64;
    assert!((2.2..4.0).contains(&ratio), "clflush ratio {ratio}");
    // Every byte the client generated is accounted for.
    assert_eq!(one.client_bytes, 4 << 20);
    assert_eq!(one.client_ops, (4 << 20) / 100);
}

#[test]
fn tinca_cluster_beats_classic_cluster_on_teragen() {
    let mut times = Vec::new();
    for sys in [System::Classic, System::Tinca] {
        let cfg = StackConfig::tiny(sys);
        let report = HdfsCluster::new(4, 2, &cfg, 1 << 20).run_teragen(6 << 20, 16 << 10);
        times.push(report.exec_seconds());
    }
    assert!(
        times[1] < times[0],
        "Tinca cluster ({}) should finish before Classic ({})",
        times[1],
        times[0]
    );
}

#[test]
fn gluster_filebench_runs_all_personalities() {
    for p in [
        Personality::Fileserver,
        Personality::Webproxy,
        Personality::Varmail,
    ] {
        let cfg = StackConfig::tiny(System::Tinca);
        let cluster = GlusterCluster::new(4, 2, &cfg);
        let report = GlusterFilebench {
            personality: p,
            nfiles: 32,
            file_bytes: 32 << 10,
            io_bytes: 16 << 10,
            ops: 120,
            seed: 0xC1,
        }
        .run(cluster);
        assert_eq!(report.client_ops, 120, "{}", p.name());
        assert!(report.ops_per_sec() > 0.0);
        // Replica-2 mirroring: writes land on exactly two nodes; all four
        // nodes hold some share of the hashed namespace.
        let nodes_with_files = report.nodes.iter().filter(|n| n.files > 0).count();
        assert_eq!(nodes_with_files, 4, "{}", p.name());
    }
}
