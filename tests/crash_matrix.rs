//! Workspace-level crash matrix: both consistent systems, several crash
//! policies, full verification — a compact version of the §5.1
//! recoverability experiment run as part of the test suite.

use tinca_repro::crashsim::{fuzz_system, CrashHarness, FsOracle};
use tinca_repro::fssim::stack::{StackConfig, System};
use tinca_repro::nvmsim::CrashPolicy;

#[test]
fn fuzz_matrix_is_clean() {
    for (sys, seed) in [(System::Tinca, 777u64), (System::Classic, 888)] {
        let report = fuzz_system(sys, seed, 12, 50);
        assert!(report.clean(), "{}: {:?}", sys.name(), report.violations);
    }
}

#[test]
fn trip_sweep_over_one_fs_transaction() {
    // Seed a file, then overwrite it in one fsync; crash at a spread of
    // points; the observed state must always be old-or-new, never mixed.
    for trip in (25..1200u64).step_by(120) {
        let mut cfg = StackConfig::tiny(System::Tinca);
        cfg.txn_block_limit = 100_000;
        let mut h = CrashHarness::new(cfg);
        let mut oracle = FsOracle::new();
        h.run(|fs| {
            let f = fs.create("doc").unwrap();
            fs.write(f, 0, &[1u8; 24_000]).unwrap();
            fs.fsync().unwrap();
        });
        oracle.create("doc");
        oracle.write("doc", 0, &[1u8; 24_000]);
        oracle.committed();
        let _ = h.run_with_trip(trip, |fs| {
            let f = fs.open("doc").unwrap();
            fs.write(f, 0, &[2u8; 24_000]).unwrap();
            fs.fsync().unwrap();
        });
        oracle.write("doc", 0, &[2u8; 24_000]);
        h.crash_and_remount(CrashPolicy::Random(trip));
        h.verify(&oracle)
            .unwrap_or_else(|e| panic!("Tinca torn at trip {trip}: {e}"));
    }
}

#[test]
fn deletion_is_crash_atomic() {
    let mut cfg = StackConfig::tiny(System::Tinca);
    cfg.txn_block_limit = 100_000;
    for trip in [40u64, 200, 800] {
        let mut h = CrashHarness::new(cfg.clone());
        let mut oracle = FsOracle::new();
        h.run(|fs| {
            let f = fs.create("victim").unwrap();
            fs.write(f, 0, &[5u8; 10_000]).unwrap();
            let g = fs.create("keeper").unwrap();
            fs.write(g, 0, &[6u8; 5_000]).unwrap();
            fs.fsync().unwrap();
        });
        oracle.create("victim");
        oracle.write("victim", 0, &[5u8; 10_000]);
        oracle.create("keeper");
        oracle.write("keeper", 0, &[6u8; 5_000]);
        oracle.committed();
        let _ = h.run_with_trip(trip, |fs| {
            fs.delete("victim").unwrap();
            fs.fsync().unwrap();
        });
        oracle.delete("victim");
        h.crash_and_remount(CrashPolicy::Random(trip ^ 0xDEAD));
        h.verify(&oracle)
            .unwrap_or_else(|e| panic!("delete torn at trip {trip}: {e}"));
        // Whatever happened to "victim", "keeper" is intact.
        let fs = h.fs();
        let g = fs.open("keeper").unwrap();
        let mut buf = [0u8; 5_000];
        fs.read(g, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 6));
    }
}
