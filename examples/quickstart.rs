//! Quickstart: build a Tinca stack, commit transactions, survive a crash.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tinca_repro::blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use tinca_repro::nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca_repro::tinca::{TincaCache, TincaConfig};

fn main() {
    // A simulated PCM device and SSD share one simulated clock.
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(16 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 18, clock.clone());

    // Format the transactional NVM cache on top of them.
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), TincaConfig::default());

    // Commit a multi-block transaction atomically — each payload is
    // written to NVM exactly once (role switch, no journal double write).
    let mut txn = cache.init_txn();
    txn.write(1000, &[0xAA; BLOCK_SIZE]);
    txn.write(2000, &[0xBB; BLOCK_SIZE]);
    txn.write(3000, &[0xCC; BLOCK_SIZE]);
    cache.commit(&txn).expect("commit");
    println!(
        "committed 3 blocks in {} ns of simulated time",
        clock.now_ns()
    );

    let s = nvm.stats();
    println!(
        "NVM cost: {} clflush, {} sfence, {} lines written",
        s.clflush, s.sfence, s.lines_written
    );

    // Read back through the cache.
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(2000, &mut buf).unwrap();
    assert_eq!(buf[0], 0xBB);
    println!("block 2000 reads back 0x{:02X}", buf[0]);

    // Power failure! DRAM state is gone; un-fenced NVM lines resolve
    // adversarially; the disk never saw the data (write-back cache).
    drop(cache);
    nvm.crash(CrashPolicy::Random(42));

    // Recovery rebuilds the DRAM index from the persistent cache entries
    // and revokes any incomplete transaction (there is none here).
    let recovered =
        TincaCache::recover(nvm, disk, TincaConfig::default()).expect("recover after crash");
    recovered
        .check_consistency()
        .expect("consistent after crash");

    let mut buf = [0u8; BLOCK_SIZE];
    recovered.read_nocache(1000, &mut buf).unwrap();
    assert_eq!(buf[0], 0xAA, "committed data survives the crash");
    println!(
        "after crash + recovery: block 1000 = 0x{:02X}, {} blocks cached, stats: {:?}",
        buf[0],
        recovered.cached_blocks(),
        recovered.stats()
    );
    println!("quickstart OK");
}
