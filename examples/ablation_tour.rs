//! A guided tour of the design-choice ablations: run one identical Fio
//! write workload across every system variant and print where each of the
//! paper's claimed costs shows up.
//!
//! ```text
//! cargo run --release --example ablation_tour
//! ```

use tinca_repro::fssim::stack::{build, StackConfig, System};
use tinca_repro::workloads::fio::{Fio, FioSpec};
use tinca_repro::workloads::measure;

fn main() {
    let systems = [
        (
            System::Tinca,
            "the paper's design: role switch + 16B entries",
        ),
        (
            System::TincaNoRoleSwitch,
            "ablation: commit degrades to double writes",
        ),
        (
            System::Ubj,
            "UBJ baseline: freeze-in-place + txn checkpoints",
        ),
        (
            System::Classic,
            "legacy stack: JBD2 journal over Flashcache",
        ),
        (
            System::ClassicNoMeta,
            "Classic without synchronous metadata",
        ),
        (
            System::ClassicNoJournal,
            "Classic without journaling (unsafe)",
        ),
    ];
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12}   note",
        "system", "write IOPS", "clflush/op", "disk wr/op", "NVM MB"
    );
    let mut base = 0.0;
    for (sys, note) in systems {
        let mut cfg = StackConfig::scaled_local(sys);
        cfg.nvm_bytes = 16 << 20;
        let mut stack = build(&cfg).expect("stack");
        let mut fio = Fio::new(FioSpec {
            read_pct: 0,
            file_bytes: cfg.nvm_bytes as u64 * 5 / 2,
            req_bytes: 4096,
            ops: 8_000,
            fsync_every: 64,
            seed: 0xAB1,
        });
        fio.setup(&mut stack);
        let m = measure(&stack, sys.name());
        let _ = fio.run(&mut stack);
        let r = m.finish(&stack, fio.write_ops());
        if base == 0.0 {
            base = r.ops_per_sec();
        }
        println!(
            "{:<26} {:>10.0} {:>12.1} {:>12.2} {:>12.1}   {note}",
            sys.name(),
            r.ops_per_sec(),
            r.clflush_per_op(),
            r.disk_writes_per_op(),
            r.nvm_mb_written(),
        );
    }
    println!("\nReading the table:");
    println!(" - Tinca vs Tinca-noroleswitch isolates the double-write cost (§4.3).");
    println!(" - Tinca vs UBJ isolates freeze-in-place's frozen-update memcpy + checkpoint stalls (§5.4.4).");
    println!(" - Classic vs Classic-nometa isolates the 4KB metadata-block updates (§3.2/Fig 4).");
    println!(" - Classic vs Classic-nojournal isolates the journal itself (§3.1/Fig 3).");
}
