//! Persist-order auditing: catch a deleted fence without crashing.
//!
//! Replays the paper's §4.4 commit protocol twice on a traced NVM
//! device — once correctly, once with the role-switch `sfence` deleted —
//! and runs the `persistcheck` analyzer on both traces. The correct run
//! is CLEAN; the mutated run is flagged `flush-without-fence` with the
//! event ordinals of the offending flush and commit.
//!
//! ```text
//! cargo run --release --example persist_audit
//! ```

use tinca_repro::nvmsim::{Nvm, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca_repro::persistcheck::{check, CheckConfig};

const TAIL_OFF: usize = 0;
const HEAD_OFF: usize = 64;
const RING_OFF: usize = 128;
const ENTRY_OFF: usize = 256;
const DATA_OFF: usize = 1024;
const BLOCK: usize = 512;

/// One §4.4 commit of one block; `fence_role_switch` is the knob.
fn commit_once(d: &Nvm, txn: u64, fence_role_switch: bool) {
    // (1) COW block write: payload, flush, fence.
    d.write(DATA_OFF, &vec![txn as u8; BLOCK]);
    d.persist(DATA_OFF, BLOCK);
    // (2) Cache entry: one 16-byte atomic store, persisted.
    d.atomic_write_u128(ENTRY_OFF, (u128::from(txn) << 64) | 0x1);
    d.persist(ENTRY_OFF, 16);
    // (3) Ring slot + Head move.
    d.atomic_write_u64(RING_OFF, txn);
    d.persist(RING_OFF, 8);
    d.atomic_write_u64(HEAD_OFF, txn);
    d.persist(HEAD_OFF, 8);
    // (4) Role switch: atomic entry update + flush (+ the fence in question).
    d.atomic_write_u128(ENTRY_OFF, (u128::from(txn) << 64) | 0x2);
    d.clflush(ENTRY_OFF, 16);
    if fence_role_switch {
        d.sfence();
    }
    // (5) Commit point: Tail := Head.
    d.atomic_write_u64(TAIL_OFF, txn);
    d.persist(TAIL_OFF, 8);
    d.note_commit(TAIL_OFF, 8);
}

fn main() {
    for (label, fenced) in [
        ("correct protocol", true),
        ("role-switch fence deleted", false),
    ] {
        let d = NvmDevice::new(
            NvmConfig::new(8192, NvmTech::Pcm).with_tracing(),
            SimClock::new(),
        );
        for txn in 1..=3 {
            commit_once(&d, txn, fenced);
        }
        let metadata = 0..DATA_OFF;
        let report = check(&d.take_trace(), CheckConfig::with_metadata(vec![metadata]));
        println!("--- {label} ---\n{report}\n");
    }
}
