//! TeraGen on the HDFS-like cluster (Fig. 9/10 of the paper): four data
//! nodes, each a full NVM-cache storage stack on its own thread, with
//! pipelined replication — comparing Tinca and Classic node stacks.
//!
//! ```text
//! cargo run --release --example cluster_teragen [replicas] [MiB]
//! ```

use tinca_repro::cluster::HdfsCluster;
use tinca_repro::fssim::stack::{StackConfig, System};

fn main() {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let mib: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    println!("TeraGen {mib} MiB on 4 data nodes, {replicas} replica(s)\n");
    let mut times = Vec::new();
    for sys in [System::Classic, System::Tinca] {
        let mut cfg = StackConfig::scaled_local(sys);
        cfg.nvm_bytes = 8 << 20;
        let cluster = HdfsCluster::new(4, replicas, &cfg, 2 << 20);
        let report = cluster.run_teragen(mib << 20, 16 << 10);
        times.push(report.exec_seconds());
        println!(
            "{:<10} exec {:>7.3}s  clflush/MB {:>8.0}  disk-writes/MB {:>7.1}  rows {:>9}",
            sys.name(),
            report.exec_seconds(),
            report.clflush_per_mb(),
            report.disk_writes_per_mb(),
            report.client_ops,
        );
        for n in &report.nodes {
            println!(
                "    node {}: {:>7.3}s  {:>9} clflush  {:>7} disk writes  {} chunks",
                n.node_id,
                n.sim_ns as f64 / 1e9,
                n.nvm.clflush,
                n.disk.writes,
                n.files
            );
        }
    }
    println!(
        "\nTinca saves {:.1}% of the execution time at {replicas} replicas",
        (1.0 - times[1] / times[0]) * 100.0
    );
}
