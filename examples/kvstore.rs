//! A crash-consistent key-value store built on the Tinca-backed file
//! system — the kind of application the paper's intro motivates: it gets
//! transactional durability *from the cache layer*, with no journal and
//! no double writes.
//!
//! The store keeps fixed-size records in one file; every `put` batch is
//! one file-system transaction, so a power cut can never expose a
//! half-applied batch.
//!
//! ```text
//! cargo run --release --example kvstore
//! ```

use std::collections::HashMap;

use tinca_repro::crashsim::quiet_crash_panics;
use tinca_repro::fssim::stack::{build, remount, Stack, StackConfig, System};
use tinca_repro::fssim::FileId;
use tinca_repro::nvmsim::CrashPolicy;

const RECORD: usize = 256;
const SLOTS: u64 = 4096;

/// A tiny hash-addressed KV store over one FsSim file.
struct KvStore {
    file: FileId,
}

impl KvStore {
    fn open(stack: &mut Stack) -> KvStore {
        let file = if stack.fs.exists("kv.db") {
            stack.fs.open("kv.db").unwrap()
        } else {
            stack.fs.create("kv.db").unwrap()
        };
        KvStore { file }
    }

    fn slot(key: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h % SLOTS
    }

    /// Applies a batch of puts and makes them durable atomically.
    fn put_batch(&self, stack: &mut Stack, kvs: &[(&str, &str)]) {
        for (k, v) in kvs {
            assert!(k.len() <= 64 && v.len() <= 180, "record overflow");
            let mut rec = [0u8; RECORD];
            rec[0] = k.len() as u8;
            rec[1..1 + k.len()].copy_from_slice(k.as_bytes());
            rec[65] = v.len() as u8;
            rec[66..66 + v.len()].copy_from_slice(v.as_bytes());
            stack
                .fs
                .write(self.file, Self::slot(k) * RECORD as u64, &rec)
                .expect("write record");
        }
        // One commit = one Tinca transaction: all-or-nothing durability.
        stack.fs.fsync().expect("fsync");
    }

    fn get(&self, stack: &mut Stack, key: &str) -> Option<String> {
        let mut rec = [0u8; RECORD];
        let n = stack
            .fs
            .read(self.file, Self::slot(key) * RECORD as u64, &mut rec)
            .ok()?;
        if n < RECORD || rec[0] == 0 {
            return None;
        }
        let klen = rec[0] as usize;
        if &rec[1..1 + klen] != key.as_bytes() {
            return None; // different key hashed here
        }
        let vlen = rec[65] as usize;
        Some(String::from_utf8_lossy(&rec[66..66 + vlen]).into_owned())
    }
}

fn main() {
    quiet_crash_panics();
    let cfg = StackConfig::tiny(System::Tinca);
    let mut stack = build(&cfg).expect("stack");
    let kv = KvStore::open(&mut stack);

    // Committed state the crash must never damage.
    let mut expected: HashMap<&str, &str> = HashMap::new();
    kv.put_batch(&mut stack, &[("alice", "engineer"), ("bob", "analyst")]);
    expected.insert("alice", "engineer");
    expected.insert("bob", "analyst");
    println!("committed batch 1: alice, bob");

    // A batch that crashes mid-commit: arm a power cut a few hundred
    // persistence events ahead, inside the commit.
    stack.nvm.set_trip(Some(150));
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        kv.put_batch(&mut stack, &[("alice", "manager"), ("carol", "director")]);
    }))
    .is_err();
    stack.nvm.set_trip(None);
    println!(
        "batch 2 {}",
        if crashed {
            "interrupted by power cut"
        } else {
            "completed"
        }
    );

    // Reboot: crash the device, recover the cache, remount the FS.
    let (nvm, disk, clock) = (stack.nvm.clone(), stack.disk.clone(), stack.clock.clone());
    drop(stack.fs);
    nvm.crash(CrashPolicy::Random(7));
    let mut stack = remount(&cfg, nvm, disk, clock).expect("remount");
    let kv = KvStore::open(&mut stack);

    let alice = kv.get(&mut stack, "alice").expect("alice must exist");
    let carol = kv.get(&mut stack, "carol");
    println!("after recovery: alice={alice:?} carol={carol:?}");
    // Atomicity: either the whole second batch landed, or none of it.
    match (alice.as_str(), &carol) {
        ("engineer", None) => println!("=> batch 2 fully rolled back (old state)"),
        ("manager", Some(c)) if c == "director" => println!("=> batch 2 fully committed"),
        other => panic!("torn batch visible after crash: {other:?}"),
    }
    assert_eq!(kv.get(&mut stack, "bob").as_deref(), Some("analyst"));
    println!("kvstore OK: transactions are all-or-nothing across power cuts");
}
