//! Crash-torture: the paper's §5.1 recoverability experiment as a
//! repeatable campaign. Runs seeded workloads against the Tinca stack,
//! cuts the power at random persistence events, resolves the volatile
//! write-back state adversarially, recovers, and verifies the file-system
//! state against an oracle — hundreds of times.
//!
//! ```text
//! cargo run --release --example crash_torture [runs]
//! ```

use tinca_repro::crashsim::{fuzz_system, FuzzReport};
use tinca_repro::fssim::stack::System;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    println!("crash-torture: {runs} runs per system\n");
    for (system, seed) in [(System::Tinca, 9_000u64), (System::Classic, 19_000)] {
        let report: FuzzReport = fuzz_system(system, seed, runs, 80);
        println!(
            "{:<22} runs={} completed={} crashes={} violations={}",
            system.name(),
            report.runs,
            report.completed,
            report.crashes,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  !! {v}");
        }
        assert!(
            report.clean(),
            "{} lost crash consistency — see violations above",
            system.name()
        );
    }
    println!("\nNo consistency violation in any run — matching the paper's");
    println!("observation that \"crash consistency of the system is never impaired\".");
}
