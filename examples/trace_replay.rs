//! Replay a block-level I/O trace against both cache designs.
//!
//! With a path argument, parses a trace in the text format
//! (`R,blk,len` / `W,blk,len` / `F` per line); without one, synthesises
//! an MSR-like skewed trace.
//!
//! ```text
//! cargo run --release --example trace_replay [trace.txt]
//! ```

use tinca_repro::fssim::stack::{build, StackConfig, System};
use tinca_repro::workloads::trace::{parse_trace, synthesize, TraceReplayer, TraceSpec};

fn main() {
    let ops = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read trace file");
            parse_trace(&text).unwrap_or_else(|e| panic!("{e}"))
        }
        None => {
            let spec = TraceSpec {
                blocks: 8192,
                ops: 20_000,
                read_pct: 35,
                theta: 0.95,
                fsync_every: 64,
                seed: 0x7ACE,
            };
            println!(
                "(no trace given — synthesising {} skewed ops over {} blocks)\n",
                spec.ops, spec.blocks
            );
            synthesize(&spec)
        }
    };

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "system", "IOPS", "clflush/op", "disk wr/op", "sim secs"
    );
    for sys in [System::Classic, System::Tinca] {
        let mut cfg = StackConfig::scaled_local(sys);
        cfg.nvm_bytes = 16 << 20;
        let mut stack = build(&cfg).expect("stack");
        let mut replayer = TraceReplayer::new(ops.clone());
        replayer.setup(&mut stack);
        let r = replayer.run(&mut stack);
        println!(
            "{:<10} {:>10.0} {:>12.1} {:>12.2} {:>10.3}",
            sys.name(),
            r.ops_per_sec(),
            r.clflush_per_op(),
            r.disk_writes_per_op(),
            r.sim_ns as f64 / 1e9
        );
    }
}
